package obs

import "sync"

// Ring is a fixed-capacity ring buffer keeping the most recent values —
// the backing store of the /trace endpoint. Safe for concurrent use.
type Ring[T any] struct {
	mu    sync.Mutex
	buf   []T
	total uint64 // values ever pushed
}

// NewRing returns a ring holding the last n values (n >= 1).
func NewRing[T any](n int) *Ring[T] {
	if n < 1 {
		n = 1
	}
	return &Ring[T]{buf: make([]T, 0, n)}
}

// Push appends v, evicting the oldest value when full.
func (r *Ring[T]) Push(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = v
	}
	r.total++
}

// Snapshot returns the retained values, oldest first.
func (r *Ring[T]) Snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	start := r.total % uint64(cap(r.buf))
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// Total returns how many values were ever pushed (including evicted).
func (r *Ring[T]) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
