// Package ir defines the µP4 intermediate representation (µP4-IR).
//
// The frontend lowers each µP4 module into one ir.Program (paper Fig. 4a);
// the midend links, analyzes and transforms Programs; backends map them to
// target pipelines. The IR is deliberately flat and JSON-serializable: all
// storage is named by dotted path strings ("h.eth.dstMac", "nh",
// "l3_i.h.ipv4.ttl" after inlining), and expressions and statements are
// tagged unions.
package ir

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ----------------------------------------------------------------------------
// Expressions

// Expression kinds.
const (
	EConst   = "const"   // Value, Width
	ERef     = "ref"     // Ref (dotted path), Width
	EBin     = "bin"     // Op, X, Y
	EUn      = "un"      // Op, X
	ESlice   = "slice"   // X, Hi, Lo (bit positions within X)
	EIsValid = "isvalid" // Ref names a header instance path
	EBSlice  = "bslice"  // byte-stack slice: Off (bit offset), Width
	EBValid  = "bvalid"  // byte-stack validity: true iff packet length > Off (byte index)
)

// Expr is an IR expression. Width is the result width in bits; boolean
// expressions use Width 1 with the Bool flag.
type Expr struct {
	Kind  string `json:"k"`
	Width int    `json:"w,omitempty"`
	Bool  bool   `json:"b,omitempty"`
	Value uint64 `json:"v,omitempty"`
	Ref   string `json:"ref,omitempty"`
	Op    string `json:"op,omitempty"`
	X     *Expr  `json:"x,omitempty"`
	Y     *Expr  `json:"y,omitempty"`
	Hi    int    `json:"hi,omitempty"`
	Lo    int    `json:"lo,omitempty"`
	Off   int    `json:"off,omitempty"`
}

// Const returns a constant expression.
func Const(v uint64, w int) *Expr { return &Expr{Kind: EConst, Value: v, Width: w} }

// Ref returns a reference expression.
func Ref(path string, w int) *Expr { return &Expr{Kind: ERef, Ref: path, Width: w} }

// BoolConst returns a boolean constant.
func BoolConst(v bool) *Expr {
	var n uint64
	if v {
		n = 1
	}
	return &Expr{Kind: EConst, Value: n, Width: 1, Bool: true}
}

func (e *Expr) String() string {
	if e == nil {
		return "<nil>"
	}
	switch e.Kind {
	case EConst:
		if e.Bool {
			return fmt.Sprintf("%t", e.Value != 0)
		}
		return fmt.Sprintf("%dw%#x", e.Width, e.Value)
	case ERef:
		return e.Ref
	case EBin:
		return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y)
	case EUn:
		return fmt.Sprintf("%s%s", e.Op, e.X)
	case ESlice:
		return fmt.Sprintf("%s[%d:%d]", e.X, e.Hi, e.Lo)
	case EIsValid:
		return fmt.Sprintf("%s.isValid()", e.Ref)
	case EBSlice:
		return fmt.Sprintf("bs[%d+:%d]", e.Off, e.Width)
	case EBValid:
		return fmt.Sprintf("bs[%d].isValid()", e.Off)
	}
	return "<bad expr>"
}

// Clone deep-copies an expression.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	c := *e
	c.X = e.X.Clone()
	c.Y = e.Y.Clone()
	return &c
}

// Rename applies fn to every Ref path in the expression tree.
func (e *Expr) Rename(fn func(string) string) {
	if e == nil {
		return
	}
	if e.Ref != "" {
		e.Ref = fn(e.Ref)
	}
	e.X.Rename(fn)
	e.Y.Rename(fn)
}

// Walk calls fn for e and every sub-expression.
func (e *Expr) Walk(fn func(*Expr)) {
	if e == nil {
		return
	}
	fn(e)
	e.X.Walk(fn)
	e.Y.Walk(fn)
}

// ----------------------------------------------------------------------------
// Statements

// Statement kinds.
const (
	SAssign     = "assign"      // LHS, RHS
	SIf         = "if"          // Cond, Then, Else
	SSwitch     = "switch"      // Cond, Cases
	SApplyTable = "apply_table" // Table
	SCallModule = "call_module" // Instance, Module, Args
	SExtract    = "extract"     // Hdr (header instance path), VarSize (optional)
	SEmit       = "emit"        // Hdr
	SSetValid   = "set_valid"   // Hdr
	SSetInvalid = "set_invalid" // Hdr
	SMethod     = "method"      // Target (instance path), Method, Args
	SExit       = "exit"
	SShift      = "shift" // byte-stack shift: Off/Len/Amt in BYTES, synthesized by deparser MATs
)

// Arg is an argument to a module call: the expression plus the formal's
// direction so the linker can wire out/inout copies.
type Arg struct {
	Expr *Expr  `json:"e"`
	Dir  string `json:"dir,omitempty"` // "", "in", "out", "inout"
}

// Case is a switch case.
type Case struct {
	Values  []uint64 `json:"vals,omitempty"`
	Default bool     `json:"def,omitempty"`
	Body    []*Stmt  `json:"body"`
}

// Stmt is an IR statement.
type Stmt struct {
	Kind     string  `json:"k"`
	LHS      *Expr   `json:"lhs,omitempty"`
	RHS      *Expr   `json:"rhs,omitempty"`
	Cond     *Expr   `json:"cond,omitempty"`
	Then     []*Stmt `json:"then,omitempty"`
	Else     []*Stmt `json:"else,omitempty"`
	Cases    []*Case `json:"cases,omitempty"`
	Table    string  `json:"table,omitempty"`
	Instance string  `json:"inst,omitempty"`
	Module   string  `json:"mod,omitempty"`
	Args     []Arg   `json:"args,omitempty"`
	Hdr      string  `json:"hdr,omitempty"`
	VarSize  *Expr   `json:"varsize,omitempty"`
	Target   string  `json:"target,omitempty"`
	Method   string  `json:"method,omitempty"`
	// SCallModule: which pkt/im_t instances are passed (usually the
	// canonical "$pkt"/"$im"; multi-packet programs pass locals).
	PktArg string `json:"pktarg,omitempty"`
	ImArg  string `json:"imarg,omitempty"`
	// SShift fields (byte units within the byte-stack).
	Off int `json:"soff,omitempty"`
	Len int `json:"slen,omitempty"`
	Amt int `json:"samt,omitempty"`
}

// Clone deep-copies a statement.
func (s *Stmt) Clone() *Stmt {
	if s == nil {
		return nil
	}
	c := *s
	c.LHS = s.LHS.Clone()
	c.RHS = s.RHS.Clone()
	c.Cond = s.Cond.Clone()
	c.VarSize = s.VarSize.Clone()
	c.Then = CloneStmts(s.Then)
	c.Else = CloneStmts(s.Else)
	c.Cases = nil
	for _, cs := range s.Cases {
		nc := &Case{Values: append([]uint64(nil), cs.Values...), Default: cs.Default, Body: CloneStmts(cs.Body)}
		c.Cases = append(c.Cases, nc)
	}
	c.Args = nil
	for _, a := range s.Args {
		c.Args = append(c.Args, Arg{Expr: a.Expr.Clone(), Dir: a.Dir})
	}
	return &c
}

// CloneStmts deep-copies a statement list.
func CloneStmts(ss []*Stmt) []*Stmt {
	if ss == nil {
		return nil
	}
	out := make([]*Stmt, len(ss))
	for i, s := range ss {
		out[i] = s.Clone()
	}
	return out
}

// Rename applies fn to every storage path in the statement tree,
// including header paths, table names, instance names, and refs.
func (s *Stmt) Rename(fn func(string) string) {
	if s == nil {
		return
	}
	s.LHS.Rename(fn)
	s.RHS.Rename(fn)
	s.Cond.Rename(fn)
	s.VarSize.Rename(fn)
	if s.Hdr != "" {
		s.Hdr = fn(s.Hdr)
	}
	if s.Table != "" {
		s.Table = fn(s.Table)
	}
	if s.Instance != "" {
		s.Instance = fn(s.Instance)
	}
	if s.Target != "" {
		s.Target = fn(s.Target)
	}
	if s.PktArg != "" {
		s.PktArg = fn(s.PktArg)
	}
	if s.ImArg != "" {
		s.ImArg = fn(s.ImArg)
	}
	for i := range s.Args {
		s.Args[i].Expr.Rename(fn)
	}
	RenameStmts(s.Then, fn)
	RenameStmts(s.Else, fn)
	for _, c := range s.Cases {
		RenameStmts(c.Body, fn)
	}
}

// RenameStmts applies fn to every storage path in a statement list.
func RenameStmts(ss []*Stmt, fn func(string) string) {
	for _, s := range ss {
		s.Rename(fn)
	}
}

// WalkStmts calls fn for every statement in the tree, pre-order.
func WalkStmts(ss []*Stmt, fn func(*Stmt)) {
	for _, s := range ss {
		fn(s)
		WalkStmts(s.Then, fn)
		WalkStmts(s.Else, fn)
		for _, c := range s.Cases {
			WalkStmts(c.Body, fn)
		}
	}
}

// CountStmts returns the number of statements in the tree (nested
// bodies included) — the IR-size unit of the compiler pass timings.
func CountStmts(ss []*Stmt) int {
	n := 0
	WalkStmts(ss, func(*Stmt) { n++ })
	return n
}

// ----------------------------------------------------------------------------
// Parser

// TransCase is one arm of a select transition. Values/Masks are parallel;
// a nil mask entry means exact match; DontCare marks "_" keysets.
type TransCase struct {
	Values   []uint64 `json:"vals,omitempty"`
	Masks    []uint64 `json:"masks,omitempty"`
	HasMask  []bool   `json:"hasmask,omitempty"`
	DontCare []bool   `json:"dontcare,omitempty"`
	Default  bool     `json:"def,omitempty"`
	Target   string   `json:"target"`
}

// Trans is a state transition.
type Trans struct {
	Kind   string       `json:"k"` // "direct" or "select"
	Target string       `json:"target,omitempty"`
	Exprs  []*Expr      `json:"exprs,omitempty"`
	Cases  []*TransCase `json:"cases,omitempty"`
}

// State is a parser state.
type State struct {
	Name  string  `json:"name"`
	Stmts []*Stmt `json:"stmts,omitempty"`
	Trans *Trans  `json:"trans,omitempty"` // nil = implicit reject
}

// Parser is a parser block: an FSM.
type Parser struct {
	States []*State `json:"states"`
}

// State returns the named state, or nil.
func (p *Parser) State(name string) *State {
	for _, st := range p.States {
		if st.Name == name {
			return st
		}
	}
	return nil
}

// ----------------------------------------------------------------------------
// Tables and actions

// Param is an action or module parameter.
type Param struct {
	Name  string `json:"name"`
	Width int    `json:"w"`
	Dir   string `json:"dir,omitempty"`
}

// Action is a table action.
type Action struct {
	Name   string  `json:"name"`
	Params []Param `json:"params,omitempty"`
	Body   []*Stmt `json:"body"`
}

// Key is one table key element.
type Key struct {
	Expr      *Expr  `json:"e"`
	MatchKind string `json:"match"`
}

// ActionCall binds an action name to constant arguments.
type ActionCall struct {
	Name string   `json:"name"`
	Args []uint64 `json:"args,omitempty"`
}

// EntryKey is one keyset in a const entry.
type EntryKey struct {
	DontCare bool   `json:"dc,omitempty"`
	Value    uint64 `json:"v,omitempty"`
	Mask     uint64 `json:"m,omitempty"`
	HasMask  bool   `json:"hm,omitempty"`
	// Priority-bearing prefix length for lpm keys in const entries.
	PrefixLen int `json:"plen,omitempty"`
}

// Entry is a const table entry.
type Entry struct {
	Keys   []EntryKey `json:"keys"`
	Action ActionCall `json:"action"`
}

// Table is a match-action table.
type Table struct {
	Name      string      `json:"name"`
	Keys      []Key       `json:"keys,omitempty"`
	Actions   []string    `json:"actions"`
	Default   *ActionCall `json:"default,omitempty"`
	Entries   []Entry     `json:"entries,omitempty"`
	Size      int         `json:"size,omitempty"`
	Synthetic bool        `json:"synthetic,omitempty"` // parser/deparser MAT
}

// ----------------------------------------------------------------------------
// Program

// Storage declaration kinds.
const (
	DeclBits   = "bits"
	DeclBool   = "bool"
	DeclHeader = "header"
	DeclStack  = "stack"
)

// Decl is one flattened storage declaration.
type Decl struct {
	Path      string `json:"path"`
	Kind      string `json:"k"`
	Width     int    `json:"w,omitempty"`    // bits
	TypeName  string `json:"type,omitempty"` // header type name
	StackSize int    `json:"stack,omitempty"`
}

// HeaderField is one field of a header type.
type HeaderField struct {
	Name     string `json:"name"`
	Width    int    `json:"w"`
	Offset   int    `json:"off"`
	Varbit   bool   `json:"varbit,omitempty"`
	MaxWidth int    `json:"maxw,omitempty"`
}

// HeaderType is a header type layout.
type HeaderType struct {
	Name      string        `json:"name"`
	Fields    []HeaderField `json:"fields"`
	BitWidth  int           `json:"bits"`
	HasVarbit bool          `json:"hasvarbit,omitempty"`
}

// ByteSize returns the (maximum) header size in bytes.
func (h *HeaderType) ByteSize() int { return (h.BitWidth + 7) / 8 }

// Field returns the named field, or nil.
func (h *HeaderType) Field(name string) *HeaderField {
	for i := range h.Fields {
		if h.Fields[i].Name == name {
			return &h.Fields[i]
		}
	}
	return nil
}

// ModParam is one element of a module's callable signature (data
// parameters only; the pkt and im_t externs are implicit).
type ModParam struct {
	Name  string `json:"name"`
	Dir   string `json:"dir"`
	Width int    `json:"w"`
}

// Proto is a callee module's signature.
type Proto struct {
	Name   string     `json:"name"`
	Params []ModParam `json:"params"`
}

// Instance is a module or extern instantiation inside a control.
type Instance struct {
	Name   string `json:"name"`
	Module string `json:"module,omitempty"` // module type name
	Extern string `json:"extern,omitempty"` // extern type name (mc_engine, ...)
	// Register instances (the §8.2 stateful extension).
	Size  int `json:"size,omitempty"`  // number of cells
	Width int `json:"width,omitempty"` // cell width in bits
	// Flowtable instances (the flow-state extension): entry TTLs in
	// virtual ticks for new and established flows. Size is reused for
	// the table capacity.
	IdleTTL uint64 `json:"idle_ttl,omitempty"`
	EstTTL  uint64 `json:"est_ttl,omitempty"`
}

// Program is the µP4-IR of one module.
type Program struct {
	Name       string                 `json:"name"`
	Interface  string                 `json:"interface"`
	SourceFile string                 `json:"source,omitempty"`
	Headers    map[string]*HeaderType `json:"headers"`
	Decls      []Decl                 `json:"decls"`
	Params     []ModParam             `json:"params,omitempty"`
	Parser     *Parser                `json:"parser,omitempty"`
	Apply      []*Stmt                `json:"apply"`
	Actions    map[string]*Action     `json:"actions,omitempty"`
	Tables     map[string]*Table      `json:"tables,omitempty"`
	Instances  []Instance             `json:"instances,omitempty"`
	Deparser   []*Stmt                `json:"deparser,omitempty"`
	Protos     map[string]*Proto      `json:"protos,omitempty"`
}

// DeclByPath returns the storage declaration for path, or nil.
func (p *Program) DeclByPath(path string) *Decl {
	for i := range p.Decls {
		if p.Decls[i].Path == path {
			return &p.Decls[i]
		}
	}
	return nil
}

// HeaderOf returns the header type of the instance at path, or nil.
func (p *Program) HeaderOf(path string) *HeaderType {
	d := p.DeclByPath(path)
	if d == nil || (d.Kind != DeclHeader && d.Kind != DeclStack) {
		return nil
	}
	return p.Headers[d.TypeName]
}

// Callees returns the distinct module names instantiated by the program.
func (p *Program) CalleeModules() []string {
	var out []string
	seen := make(map[string]bool)
	for _, inst := range p.Instances {
		if inst.Module != "" && !seen[inst.Module] {
			seen[inst.Module] = true
			out = append(out, inst.Module)
		}
	}
	return out
}

// StmtCount returns the total number of IR statements in the program —
// apply block, deparser, action bodies, and parser states — as a cheap
// program-size measure for compiler observability.
func (p *Program) StmtCount() int {
	n := CountStmts(p.Apply) + CountStmts(p.Deparser)
	for _, a := range p.Actions {
		n += CountStmts(a.Body)
	}
	if p.Parser != nil {
		for _, st := range p.Parser.States {
			n += CountStmts(st.Stmts)
		}
	}
	return n
}

// InstanceByName returns the named instance, or nil.
func (p *Program) InstanceByName(name string) *Instance {
	for i := range p.Instances {
		if p.Instances[i].Name == name {
			return &p.Instances[i]
		}
	}
	return nil
}

// MarshalJSON output is the serialized µP4-IR (paper Fig. 4a: the frontend
// "serializes the µP4-IR to JSON").
func (p *Program) ToJSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// FromJSON deserializes a Program.
func FromJSON(data []byte) (*Program, error) {
	var p Program
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("decoding µP4-IR: %w", err)
	}
	return &p, nil
}

// Clone deep-copies a program.
func (p *Program) Clone() *Program {
	c := *p
	c.Headers = make(map[string]*HeaderType, len(p.Headers))
	for k, v := range p.Headers {
		hv := *v
		hv.Fields = append([]HeaderField(nil), v.Fields...)
		c.Headers[k] = &hv
	}
	c.Decls = append([]Decl(nil), p.Decls...)
	c.Params = append([]ModParam(nil), p.Params...)
	if p.Parser != nil {
		np := &Parser{}
		for _, st := range p.Parser.States {
			ns := &State{Name: st.Name, Stmts: CloneStmts(st.Stmts)}
			if st.Trans != nil {
				nt := *st.Trans
				nt.Exprs = nil
				for _, e := range st.Trans.Exprs {
					nt.Exprs = append(nt.Exprs, e.Clone())
				}
				nt.Cases = nil
				for _, tc := range st.Trans.Cases {
					ntc := *tc
					ntc.Values = append([]uint64(nil), tc.Values...)
					ntc.Masks = append([]uint64(nil), tc.Masks...)
					ntc.HasMask = append([]bool(nil), tc.HasMask...)
					ntc.DontCare = append([]bool(nil), tc.DontCare...)
					nt.Cases = append(nt.Cases, &ntc)
				}
				ns.Trans = &nt
			}
			np.States = append(np.States, ns)
		}
		c.Parser = np
	}
	c.Apply = CloneStmts(p.Apply)
	c.Deparser = CloneStmts(p.Deparser)
	c.Actions = make(map[string]*Action, len(p.Actions))
	for k, a := range p.Actions {
		na := &Action{Name: a.Name, Params: append([]Param(nil), a.Params...), Body: CloneStmts(a.Body)}
		c.Actions[k] = na
	}
	c.Tables = make(map[string]*Table, len(p.Tables))
	for k, t := range p.Tables {
		nt := *t
		nt.Keys = nil
		for _, key := range t.Keys {
			nt.Keys = append(nt.Keys, Key{Expr: key.Expr.Clone(), MatchKind: key.MatchKind})
		}
		nt.Actions = append([]string(nil), t.Actions...)
		if t.Default != nil {
			d := *t.Default
			d.Args = append([]uint64(nil), t.Default.Args...)
			nt.Default = &d
		}
		nt.Entries = nil
		for _, e := range t.Entries {
			ne := Entry{Keys: append([]EntryKey(nil), e.Keys...), Action: e.Action}
			ne.Action.Args = append([]uint64(nil), e.Action.Args...)
			nt.Entries = append(nt.Entries, ne)
		}
		c.Tables[k] = &nt
	}
	c.Instances = append([]Instance(nil), p.Instances...)
	c.Protos = make(map[string]*Proto, len(p.Protos))
	for k, pr := range p.Protos {
		npr := &Proto{Name: pr.Name, Params: append([]ModParam(nil), pr.Params...)}
		c.Protos[k] = npr
	}
	return &c
}

// prefixPath prepends prefix+"." to a path.
func prefixPath(prefix, path string) string { return prefix + "." + path }

// Prefixed returns a deep copy of the program with every storage path,
// table name, action name, and instance name prefixed by "prefix.". It is
// the core of composition-by-inlining.
func (p *Program) Prefixed(prefix string) *Program {
	c := p.Clone()
	fn := func(s string) string {
		// Intrinsic metadata ($im.*) is shared across modules: the
		// architecture passes the same im_t through every pipeline.
		if s == "$im" || strings.HasPrefix(s, "$im.") {
			return s
		}
		return prefixPath(prefix, s)
	}
	for i := range c.Decls {
		c.Decls[i].Path = fn(c.Decls[i].Path)
	}
	if c.Parser != nil {
		for _, st := range c.Parser.States {
			RenameStmts(st.Stmts, fn)
			if st.Trans != nil {
				for _, e := range st.Trans.Exprs {
					e.Rename(fn)
				}
			}
		}
	}
	RenameStmts(c.Apply, fn)
	RenameStmts(c.Deparser, fn)
	actions := make(map[string]*Action, len(c.Actions))
	for name, a := range c.Actions {
		a.Name = fn(name)
		// Action parameters live in the action's own namespace and are
		// bound by table entries; rename refs in bodies only.
		RenameStmts(a.Body, fn)
		actions[a.Name] = a
	}
	c.Actions = actions
	tables := make(map[string]*Table, len(c.Tables))
	for name, t := range c.Tables {
		t.Name = fn(name)
		for i := range t.Keys {
			t.Keys[i].Expr.Rename(fn)
		}
		for i := range t.Actions {
			t.Actions[i] = fn(t.Actions[i])
		}
		if t.Default != nil {
			t.Default.Name = fn(t.Default.Name)
		}
		for i := range t.Entries {
			t.Entries[i].Action.Name = fn(t.Entries[i].Action.Name)
		}
		tables[t.Name] = t
	}
	c.Tables = tables
	for i := range c.Instances {
		c.Instances[i].Name = fn(c.Instances[i].Name)
	}
	return c
}

// StmtString renders a statement for debugging and golden tests.
func StmtString(s *Stmt) string {
	var b strings.Builder
	writeStmt(&b, s, 0)
	return b.String()
}

func writeStmt(b *strings.Builder, s *Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	switch s.Kind {
	case SAssign:
		fmt.Fprintf(b, "%s%s = %s\n", ind, s.LHS, s.RHS)
	case SIf:
		fmt.Fprintf(b, "%sif %s {\n", ind, s.Cond)
		for _, t := range s.Then {
			writeStmt(b, t, depth+1)
		}
		if len(s.Else) > 0 {
			fmt.Fprintf(b, "%s} else {\n", ind)
			for _, t := range s.Else {
				writeStmt(b, t, depth+1)
			}
		}
		fmt.Fprintf(b, "%s}\n", ind)
	case SSwitch:
		fmt.Fprintf(b, "%sswitch %s {\n", ind, s.Cond)
		for _, c := range s.Cases {
			if c.Default {
				fmt.Fprintf(b, "%s  default:\n", ind)
			} else {
				fmt.Fprintf(b, "%s  case %v:\n", ind, c.Values)
			}
			for _, t := range c.Body {
				writeStmt(b, t, depth+2)
			}
		}
		fmt.Fprintf(b, "%s}\n", ind)
	case SApplyTable:
		fmt.Fprintf(b, "%sapply %s\n", ind, s.Table)
	case SCallModule:
		fmt.Fprintf(b, "%scall %s:%s(%d args)\n", ind, s.Instance, s.Module, len(s.Args))
	case SExtract:
		fmt.Fprintf(b, "%sextract %s\n", ind, s.Hdr)
	case SEmit:
		fmt.Fprintf(b, "%semit %s\n", ind, s.Hdr)
	case SSetValid:
		fmt.Fprintf(b, "%s%s.setValid()\n", ind, s.Hdr)
	case SSetInvalid:
		fmt.Fprintf(b, "%s%s.setInvalid()\n", ind, s.Hdr)
	case SMethod:
		fmt.Fprintf(b, "%s%s.%s(%d args)\n", ind, s.Target, s.Method, len(s.Args))
	case SExit:
		fmt.Fprintf(b, "%sexit\n", ind)
	case SShift:
		fmt.Fprintf(b, "%sshift bs[%d..%d) up %d\n", ind, s.Off, s.Off+s.Len, s.Amt)
	default:
		fmt.Fprintf(b, "%s<%s>\n", ind, s.Kind)
	}
}
