package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleProgram() *Program {
	return &Program{
		Name:      "Sample",
		Interface: "Unicast",
		Headers: map[string]*HeaderType{
			"eth_h": {Name: "eth_h", BitWidth: 112, Fields: []HeaderField{
				{Name: "dst", Width: 48, Offset: 0},
				{Name: "src", Width: 48, Offset: 48},
				{Name: "etype", Width: 16, Offset: 96},
			}},
		},
		Decls: []Decl{
			{Path: "$hdr.eth", Kind: DeclHeader, TypeName: "eth_h"},
			{Path: "nh", Kind: DeclBits, Width: 16},
		},
		Params: []ModParam{{Name: "nh", Dir: "out", Width: 16}},
		Parser: &Parser{States: []*State{{
			Name:  "start",
			Stmts: []*Stmt{{Kind: SExtract, Hdr: "$hdr.eth"}},
			Trans: &Trans{Kind: "direct", Target: "accept"},
		}}},
		Apply: []*Stmt{
			{Kind: SAssign, LHS: Ref("nh", 16), RHS: Const(7, 16)},
			{Kind: SIf, Cond: &Expr{Kind: EIsValid, Ref: "$hdr.eth", Bool: true, Width: 1},
				Then: []*Stmt{{Kind: SApplyTable, Table: "t"}}},
		},
		Actions: map[string]*Action{
			"a": {Name: "a", Params: []Param{{Name: "x", Width: 9}},
				Body: []*Stmt{{Kind: SAssign, LHS: Ref("$im.out_port", 9), RHS: Ref("a#x", 9)}}},
		},
		Tables: map[string]*Table{
			"t": {Name: "t",
				Keys:    []Key{{Expr: Ref("$hdr.eth.etype", 16), MatchKind: "exact"}},
				Actions: []string{"a"},
				Default: &ActionCall{Name: "a", Args: []uint64{0}},
				Entries: []Entry{{Keys: []EntryKey{{Value: 0x800}}, Action: ActionCall{Name: "a", Args: []uint64{1}}}},
			},
		},
		Instances: []Instance{{Name: "r", Extern: "register", Size: 4, Width: 8}},
		Deparser:  []*Stmt{{Kind: SEmit, Hdr: "$hdr.eth"}},
	}
}

func TestJSONStability(t *testing.T) {
	p := sampleProgram()
	j1, err := p.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	q, err := FromJSON(j1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := q.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Error("JSON round-trip not stable")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := sampleProgram()
	c := p.Clone()
	// Mutate the clone everywhere; the original must not change.
	c.Decls[0].Path = "changed"
	c.Headers["eth_h"].Fields[0].Width = 1
	c.Apply[0].RHS.Value = 99
	c.Tables["t"].Entries[0].Keys[0].Value = 42
	c.Actions["a"].Body[0].LHS.Ref = "zzz"
	c.Parser.States[0].Stmts[0].Hdr = "nope"
	c.Instances[0].Size = 123

	if p.Decls[0].Path != "$hdr.eth" ||
		p.Headers["eth_h"].Fields[0].Width != 48 ||
		p.Apply[0].RHS.Value != 7 ||
		p.Tables["t"].Entries[0].Keys[0].Value != 0x800 ||
		p.Actions["a"].Body[0].LHS.Ref != "$im.out_port" ||
		p.Parser.States[0].Stmts[0].Hdr != "$hdr.eth" ||
		p.Instances[0].Size != 4 {
		t.Error("Clone shares state with the original")
	}
}

func TestPrefixed(t *testing.T) {
	p := sampleProgram()
	q := p.Prefixed("m1")
	if q.DeclByPath("m1.$hdr.eth") == nil || q.DeclByPath("m1.nh") == nil {
		t.Error("decls not prefixed")
	}
	if q.Tables["m1.t"] == nil || q.Actions["m1.a"] == nil {
		t.Errorf("tables/actions not prefixed: %v", mapsKeys(q))
	}
	// $im stays shared.
	body := q.Actions["m1.a"].Body[0]
	if body.LHS.Ref != "$im.out_port" {
		t.Errorf("$im ref prefixed: %s", body.LHS.Ref)
	}
	if body.RHS.Ref != "m1.a#x" {
		t.Errorf("action param ref = %s, want m1.a#x", body.RHS.Ref)
	}
	// Table keys, defaults, entry actions all renamed.
	tbl := q.Tables["m1.t"]
	if tbl.Keys[0].Expr.Ref != "m1.$hdr.eth.etype" {
		t.Errorf("key = %s", tbl.Keys[0].Expr.Ref)
	}
	if tbl.Default.Name != "m1.a" || tbl.Entries[0].Action.Name != "m1.a" {
		t.Errorf("actions not renamed: %+v", tbl)
	}
	// Original untouched.
	if p.Tables["t"] == nil {
		t.Error("Prefixed mutated the original")
	}
}

func mapsKeys(p *Program) []string {
	var out []string
	for k := range p.Tables {
		out = append(out, "tbl:"+k)
	}
	for k := range p.Actions {
		out = append(out, "act:"+k)
	}
	return out
}

func TestStmtStringForms(t *testing.T) {
	stmts := []*Stmt{
		{Kind: SAssign, LHS: Ref("a", 8), RHS: Const(1, 8)},
		{Kind: SShift, Off: 14, Amt: -4},
		{Kind: SExit},
		{Kind: SSwitch, Cond: Ref("x", 8), Cases: []*Case{
			{Values: []uint64{1}, Body: []*Stmt{{Kind: SExit}}},
			{Default: true, Body: nil},
		}},
	}
	for _, s := range stmts {
		if out := StmtString(s); strings.TrimSpace(out) == "" || strings.Contains(out, "<bad") {
			t.Errorf("StmtString(%v) = %q", s.Kind, out)
		}
	}
}

// Property: Prefixed twice composes (prefix paths nest), and never
// touches $im refs.
func TestQuickPrefixCompose(t *testing.T) {
	f := func(a, b uint8) bool {
		p1 := "m" + string(rune('a'+a%26))
		p2 := "n" + string(rune('a'+b%26))
		p := sampleProgram()
		q := p.Prefixed(p1).Prefixed(p2)
		if q.DeclByPath(p2+"."+p1+".nh") == nil {
			return false
		}
		return q.Actions[p2+"."+p1+".a"].Body[0].LHS.Ref == "$im.out_port"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: expression Clone+Rename never aliases the original.
func TestQuickExprRename(t *testing.T) {
	f := func(v uint32, w uint8) bool {
		e := &Expr{Kind: EBin, Op: "+",
			X: Ref("x.y", int(w%64)+1),
			Y: &Expr{Kind: ESlice, X: Ref("z", 32), Hi: 7, Lo: 0, Width: 8},
		}
		c := e.Clone()
		c.Rename(func(s string) string { return "p." + s })
		return e.X.Ref == "x.y" && c.X.Ref == "p.x.y" &&
			e.Y.X.Ref == "z" && c.Y.X.Ref == "p.z"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
