package midend

import (
	"fmt"
	"sort"
	"strings"

	"microp4/internal/ir"
)

// stackInfo describes one header-stack declaration.
type stackInfo struct {
	path string
	typ  *ir.HeaderType
	size int
}

// unrollStacks applies the §C header-stack transformation: every stack
// instance becomes size individual header instances; parser loops using
// .next are unrolled by replicating states per next-index vector;
// push_front/pop_front become series of header copies; stack emits become
// per-element emits.
func unrollStacks(p *ir.Program) error {
	stacks := make(map[string]*stackInfo)
	var newDecls []ir.Decl
	for _, d := range p.Decls {
		if d.Kind != ir.DeclStack {
			newDecls = append(newDecls, d)
			continue
		}
		ht := p.Headers[d.TypeName]
		if ht == nil {
			return fmt.Errorf("stack %s has unknown header type %s", d.Path, d.TypeName)
		}
		stacks[d.Path] = &stackInfo{path: d.Path, typ: ht, size: d.StackSize}
		for i := 0; i < d.StackSize; i++ {
			newDecls = append(newDecls, ir.Decl{Path: stackElem(d.Path, i), Kind: ir.DeclHeader, TypeName: d.TypeName})
		}
	}
	if len(stacks) == 0 {
		return nil
	}
	p.Decls = newDecls

	if p.Parser != nil {
		if err := unrollParser(p, stacks); err != nil {
			return err
		}
	}
	p.Apply = rewriteStackStmts(p.Apply, stacks)
	for _, a := range p.Actions {
		a.Body = rewriteStackStmts(a.Body, stacks)
	}
	p.Deparser = rewriteStackStmts(p.Deparser, stacks)
	return nil
}

// findStack returns the stack a .next/.last path refers to, or nil.
func findStack(stacks map[string]*stackInfo, path string) (*stackInfo, string) {
	for sp, si := range stacks {
		if path == sp {
			return si, ""
		}
		if strings.HasPrefix(path, sp+".") {
			return si, path[len(sp)+1:]
		}
	}
	return nil, ""
}

// unrollParser replicates parser states so that every .next extract gets
// a concrete index. State copies are keyed by the vector of per-stack
// next-counters at entry.
func unrollParser(p *ir.Program, stacks map[string]*stackInfo) error {
	type counters map[string]int
	keyOf := func(c counters) string {
		names := make([]string, 0, len(c))
		for n := range c {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		for _, n := range names {
			fmt.Fprintf(&b, "%s=%d;", n, c[n])
		}
		return b.String()
	}
	cloneCounters := func(c counters) counters {
		n := make(counters, len(c))
		for k, v := range c {
			n[k] = v
		}
		return n
	}

	var outStates []*ir.State
	nameOf := make(map[string]string) // (origState|counterKey) -> new name
	var build func(orig string, c counters) (string, error)
	build = func(orig string, c counters) (string, error) {
		switch orig {
		case "accept", "reject":
			return orig, nil
		}
		ck := orig + "|" + keyOf(c)
		if n, ok := nameOf[ck]; ok {
			return n, nil
		}
		src := p.Parser.State(orig)
		if src == nil {
			return "", fmt.Errorf("transition to unknown state %s", orig)
		}
		name := orig
		if keyOf(c) != keyOf(counters{}) {
			name = fmt.Sprintf("%s$%d", orig, len(outStates))
		}
		nameOf[ck] = name
		st := &ir.State{Name: name}
		outStates = append(outStates, st) // reserve position; fill below
		cc := cloneCounters(c)
		overflow := false
		for _, s := range src.Stmts {
			ns := s.Clone()
			if ns.Kind == ir.SExtract {
				if si, rest := findStack(stacks, ns.Hdr); si != nil {
					if rest != "next" {
						return "", fmt.Errorf("extract of stack member %s.%s (only .next is extractable)", si.path, rest)
					}
					idx := cc[si.path]
					if idx >= si.size {
						overflow = true
						break
					}
					ns.Hdr = stackElem(si.path, idx)
					cc[si.path] = idx + 1
				}
			}
			rewriteStackExpr(ns, stacks, cc)
			st.Stmts = append(st.Stmts, ns)
		}
		if overflow {
			// Extracting past the end of a stack rejects the packet.
			st.Stmts = nil
			st.Trans = &ir.Trans{Kind: "direct", Target: "reject"}
			return name, nil
		}
		// Transition: resolve .last/.next in select expressions against cc.
		switch tr := src.Trans; {
		case tr == nil:
			st.Trans = &ir.Trans{Kind: "direct", Target: "reject"}
		case tr.Kind == "direct":
			tgt, err := build(tr.Target, cc)
			if err != nil {
				return "", err
			}
			st.Trans = &ir.Trans{Kind: "direct", Target: tgt}
		default:
			nt := &ir.Trans{Kind: "select"}
			for _, e := range tr.Exprs {
				ne := e.Clone()
				if err := rewriteStackRef(ne, stacks, cc); err != nil {
					return "", err
				}
				nt.Exprs = append(nt.Exprs, ne)
			}
			for _, cs := range tr.Cases {
				tgt, err := build(cs.Target, cc)
				if err != nil {
					return "", err
				}
				ncs := *cs
				ncs.Target = tgt
				nt.Cases = append(nt.Cases, &ncs)
			}
			st.Trans = nt
		}
		return name, nil
	}
	if _, err := build("start", counters{}); err != nil {
		return err
	}
	p.Parser.States = outStates
	return nil
}

// rewriteStackRef resolves .last/.next member references in an expression
// against the current counters.
func rewriteStackRef(e *ir.Expr, stacks map[string]*stackInfo, cc map[string]int) error {
	var werr error
	e.Walk(func(x *ir.Expr) {
		if x.Kind != ir.ERef && x.Kind != ir.EIsValid {
			return
		}
		for sp, si := range stacks {
			if !strings.HasPrefix(x.Ref, sp+".") {
				continue
			}
			rest := x.Ref[len(sp)+1:]
			var idx int
			switch {
			case strings.HasPrefix(rest, "last.") || rest == "last":
				idx = cc[sp] - 1
				if idx < 0 {
					werr = fmt.Errorf("reference to %s.last before any extract", sp)
					return
				}
				x.Ref = stackElem(sp, idx) + strings.TrimPrefix(rest, "last")
			case strings.HasPrefix(rest, "next.") || rest == "next":
				idx = cc[sp]
				if idx >= si.size {
					werr = fmt.Errorf("reference to %s.next past the end of the stack", sp)
					return
				}
				x.Ref = stackElem(sp, idx) + strings.TrimPrefix(rest, "next")
			case rest == "lastIndex":
				x.Kind = ir.EConst
				x.Ref = ""
				x.Value = uint64(cc[sp] - 1)
				x.Width = 32
			}
		}
	})
	return werr
}

// rewriteStackExpr rewrites stack member refs inside a statement's
// expressions (parser statements during unrolling).
func rewriteStackExpr(s *ir.Stmt, stacks map[string]*stackInfo, cc map[string]int) {
	for _, e := range []*ir.Expr{s.LHS, s.RHS, s.Cond, s.VarSize} {
		if e != nil {
			rewriteStackRef(e, stacks, cc) //nolint:errcheck // parser stmts checked via transitions
		}
	}
}

// rewriteStackStmts rewrites control/deparser statements: push_front and
// pop_front become header-copy chains (§C), emits of whole stacks become
// per-element emits.
func rewriteStackStmts(ss []*ir.Stmt, stacks map[string]*stackInfo) []*ir.Stmt {
	var out []*ir.Stmt
	for _, s := range ss {
		switch s.Kind {
		case ir.SMethod:
			if si, _ := findStack(stacks, s.Target); si != nil {
				n := 1
				if len(s.Args) > 0 && s.Args[0].Expr.Kind == ir.EConst {
					n = int(s.Args[0].Expr.Value)
				}
				switch s.Method {
				case "pop_front":
					// §C (inverse of the push example): elements move up.
					for rep := 0; rep < n; rep++ {
						for i := 0; i < si.size-1; i++ {
							out = append(out, headerCopyStmts(si.typ, stackElem(si.path, i), stackElem(si.path, i+1))...)
						}
						out = append(out, &ir.Stmt{Kind: ir.SSetInvalid, Hdr: stackElem(si.path, si.size-1)})
					}
					continue
				case "push_front":
					// §C: hs2 = hs1, hs1 = hs0, hs0.setInvalid() — the
					// new front slot becomes available (invalid until
					// the program fills it and sets it valid).
					for rep := 0; rep < n; rep++ {
						for i := si.size - 1; i >= 1; i-- {
							out = append(out, headerCopyStmts(si.typ, stackElem(si.path, i), stackElem(si.path, i-1))...)
						}
						out = append(out, &ir.Stmt{Kind: ir.SSetInvalid, Hdr: stackElem(si.path, 0)})
					}
					continue
				}
			}
		case ir.SEmit:
			if si, rest := findStack(stacks, s.Hdr); si != nil && rest == "" {
				for i := 0; i < si.size; i++ {
					out = append(out, &ir.Stmt{Kind: ir.SEmit, Hdr: stackElem(si.path, i)})
				}
				continue
			}
		case ir.SIf:
			ns := s.Clone()
			ns.Then = rewriteStackStmts(ns.Then, stacks)
			ns.Else = rewriteStackStmts(ns.Else, stacks)
			out = append(out, ns)
			continue
		case ir.SSwitch:
			ns := s.Clone()
			for _, c := range ns.Cases {
				c.Body = rewriteStackStmts(c.Body, stacks)
			}
			out = append(out, ns)
			continue
		}
		out = append(out, s.Clone())
	}
	return out
}
