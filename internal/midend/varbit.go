package midend

import (
	"fmt"
	"strings"

	"microp4/internal/ir"
)

// splitVarbit applies the §C variable-length header transformation:
// a header containing fixed fields and one varbit field is split into a
// fixed-part header plus one header type per possible byte size of the
// variable part; the two-argument extract becomes a sub-parser whose
// select enumerates every possible size (the appendix's "40 states
// extracting different numbers of bytes").
func splitVarbit(p *ir.Program) error {
	// Find varbit header types in use.
	varHdrs := make(map[string]bool)
	for name, ht := range p.Headers {
		if ht.HasVarbit {
			varHdrs[name] = true
		}
	}
	if len(varHdrs) == 0 {
		return nil
	}
	// Split each varbit header type into fixed + per-size tail types.
	typeMax := make(map[string]int)
	for name := range varHdrs {
		ht := p.Headers[name]
		fixed := &ir.HeaderType{Name: name}
		var varField ir.HeaderField
		for _, f := range ht.Fields {
			if f.Varbit {
				varField = f
				continue
			}
			if varField.Varbit {
				return fmt.Errorf("header %s has fixed fields after its varbit field (unsupported)", name)
			}
			nf := f
			nf.Offset = fixed.BitWidth
			fixed.Fields = append(fixed.Fields, nf)
			fixed.BitWidth += f.Width
		}
		if fixed.BitWidth%8 != 0 {
			return fmt.Errorf("header %s: fixed part is not a whole number of bytes", name)
		}
		p.Headers[name] = fixed
		maxBytes := varField.MaxWidth / 8
		typeMax[name] = maxBytes
		for j := 1; j <= maxBytes; j++ {
			tn := vbTypeName(name, j)
			t := &ir.HeaderType{Name: tn, BitWidth: j * 8}
			for b := 0; b < j; b++ {
				t.Fields = append(t.Fields, ir.HeaderField{
					Name: fmt.Sprintf("b%d", b), Width: 8, Offset: b * 8,
				})
			}
			p.Headers[tn] = t
		}
	}
	// Add per-size tail instances for every varbit header instance.
	var tails []ir.Decl
	instMax := make(map[string]int) // instance path -> max tail bytes
	for _, d := range p.Decls {
		if d.Kind != ir.DeclHeader || !varHdrs[d.TypeName] {
			continue
		}
		orig := typeMax[d.TypeName]
		instMax[d.Path] = orig
		for j := 1; j <= orig; j++ {
			tails = append(tails, ir.Decl{
				Path: vbInstName(d.Path, j), Kind: ir.DeclHeader, TypeName: vbTypeName(d.TypeName, j),
			})
		}
	}
	p.Decls = append(p.Decls, tails...)

	// Rewrite parser states: extract(h, size) becomes extract(h-fixed)
	// followed by a select over size with one target state per byte size.
	if p.Parser != nil {
		var extra []*ir.State
		for _, st := range p.Parser.States {
			var newStmts []*ir.Stmt
			for si, s := range st.Stmts {
				if s.Kind != ir.SExtract || s.VarSize == nil {
					newStmts = append(newStmts, s)
					continue
				}
				max := instMax[s.Hdr]
				if max == 0 {
					return fmt.Errorf("varbit extract of %s, which has no varbit field", s.Hdr)
				}
				if si != len(st.Stmts)-1 {
					return fmt.Errorf("varbit extract of %s must be the last statement of its state", s.Hdr)
				}
				// Fixed part extracts in this state.
				newStmts = append(newStmts, &ir.Stmt{Kind: ir.SExtract, Hdr: s.Hdr})
				// Continuation state holding the original transition.
				cont := &ir.State{Name: st.Name + "$vbcont", Trans: st.Trans}
				extra = append(extra, cont)
				// Size dispatch: one case per byte size (value in bits).
				sel := &ir.Trans{Kind: "select", Exprs: []*ir.Expr{s.VarSize.Clone()}}
				sel.Cases = append(sel.Cases, &ir.TransCase{
					Values: []uint64{0}, Masks: []uint64{0}, HasMask: []bool{false},
					DontCare: []bool{false}, Target: cont.Name,
				})
				for j := 1; j <= max; j++ {
					vs := &ir.State{
						Name:  fmt.Sprintf("%s$vb%d", st.Name, j),
						Stmts: []*ir.Stmt{{Kind: ir.SExtract, Hdr: vbInstName(s.Hdr, j)}},
						Trans: &ir.Trans{Kind: "direct", Target: cont.Name},
					}
					extra = append(extra, vs)
					sel.Cases = append(sel.Cases, &ir.TransCase{
						Values: []uint64{uint64(j) * 8}, Masks: []uint64{0}, HasMask: []bool{false},
						DontCare: []bool{false}, Target: vs.Name,
					})
				}
				// Any other size rejects.
				sel.Cases = append(sel.Cases, &ir.TransCase{Default: true, Target: "reject"})
				st.Trans = sel
			}
			st.Stmts = newStmts
		}
		p.Parser.States = append(p.Parser.States, extra...)
	}

	// Rewrite deparser: emit(h) for a varbit header also emits its tails.
	var rewriteEmits func(ss []*ir.Stmt) []*ir.Stmt
	rewriteEmits = func(ss []*ir.Stmt) []*ir.Stmt {
		var out []*ir.Stmt
		for _, s := range ss {
			switch s.Kind {
			case ir.SEmit:
				out = append(out, s)
				if max := instMax[s.Hdr]; max > 0 {
					for j := 1; j <= max; j++ {
						out = append(out, &ir.Stmt{Kind: ir.SEmit, Hdr: vbInstName(s.Hdr, j)})
					}
				}
				continue
			case ir.SIf:
				ns := s.Clone()
				ns.Then = rewriteEmits(s.Then)
				ns.Else = rewriteEmits(s.Else)
				out = append(out, ns)
				continue
			}
			out = append(out, s)
		}
		return out
	}
	p.Deparser = rewriteEmits(p.Deparser)

	// Reject reads of the varbit field itself in controls.
	var badRef string
	check := func(s *ir.Stmt) {
		for _, e := range []*ir.Expr{s.LHS, s.RHS, s.Cond} {
			if e == nil {
				continue
			}
			e.Walk(func(x *ir.Expr) {
				if x.Kind == ir.ERef {
					for path := range instMax {
						if strings.HasPrefix(x.Ref, path+".") {
							i := strings.LastIndexByte(x.Ref, '.')
							field := x.Ref[i+1:]
							if fixedField(p, path, field) == nil {
								badRef = x.Ref
							}
						}
					}
				}
			})
		}
	}
	ir.WalkStmts(p.Apply, check)
	for _, a := range p.Actions {
		ir.WalkStmts(a.Body, check)
	}
	if badRef != "" {
		return fmt.Errorf("control reads variable-length data %s (unsupported after the §C split)", badRef)
	}
	return nil
}

func fixedField(p *ir.Program, instPath, field string) *ir.HeaderField {
	d := p.DeclByPath(instPath)
	if d == nil {
		return nil
	}
	ht := p.Headers[d.TypeName]
	if ht == nil {
		return nil
	}
	return ht.Field(field)
}

func vbTypeName(hdrType string, j int) string { return fmt.Sprintf("%s$vb%d", hdrType, j) }
func vbInstName(inst string, j int) string    { return fmt.Sprintf("%s$vb%d", inst, j) }
