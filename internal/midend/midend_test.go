package midend

import (
	"fmt"
	"strings"
	"testing"

	"microp4/internal/frontend"
	"microp4/internal/ir"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := frontend.CompileModule("t.up4", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

const stackSrc = `
struct empty_t { }
header mpls_h { bit<20> label; bit<3> tc; bit<1> bos; bit<8> ttl; }
struct hdr_t { mpls_h[3] ls; }
program Stacky : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.ls.next);
      transition select(h.ls.last.bos) {
        1: accept;
        default: start;
      };
    }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    apply {
      h.ls.pop_front(1);
      if (h.ls[0].isValid()) {
        h.ls[0].ttl = h.ls[0].ttl - 1;
      }
    }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.ls); } }
}
`

func TestStackUnrolling(t *testing.T) {
	p, err := Transform(compile(t, stackSrc))
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	// The stack decl becomes three element decls.
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("$hdr.ls.%d", i)
		if d := p.DeclByPath(path); d == nil || d.Kind != ir.DeclHeader {
			t.Errorf("missing unrolled element %s", path)
		}
	}
	if d := p.DeclByPath("$hdr.ls"); d != nil && d.Kind == ir.DeclStack {
		t.Error("stack decl survived unrolling")
	}
	// The looping parser becomes a chain of replicated states; extracting
	// a 4th element must reject.
	if len(p.Parser.States) < 3 {
		t.Errorf("got %d parser states, want ≥3 replicas", len(p.Parser.States))
	}
	var sawReject bool
	for _, st := range p.Parser.States {
		if st.Trans != nil && st.Trans.Kind == "direct" && st.Trans.Target == "reject" {
			sawReject = true
		}
	}
	if !sawReject {
		t.Error("stack-overflow path does not reject")
	}
	// Extract targets are concrete elements.
	for _, st := range p.Parser.States {
		for _, s := range st.Stmts {
			if s.Kind == ir.SExtract && strings.HasSuffix(s.Hdr, ".next") {
				t.Errorf("unresolved .next extract in state %s", st.Name)
			}
		}
	}
	// pop_front expanded into guarded element copies.
	copies := 0
	ir.WalkStmts(p.Apply, func(s *ir.Stmt) {
		if s.Kind == ir.SSetInvalid && s.Hdr == "$hdr.ls.2" {
			copies++
		}
	})
	if copies == 0 {
		t.Error("pop_front did not invalidate the last element")
	}
	// Stack emit expanded per element.
	emits := 0
	for _, s := range p.Deparser {
		if s.Kind == ir.SEmit {
			emits++
		}
	}
	if emits != 3 {
		t.Errorf("deparser has %d emits, want 3", emits)
	}
}

const varbitSrc = `
struct empty_t { }
header opt_h { bit<8> kind; bit<8> optlen; varbit<32> data; }
struct hdr_t { opt_h opt; }
program Varby : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.opt, (bit<32>)h.opt.optlen);
      transition accept;
    }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    apply { h.opt.kind = 7; }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.opt); } }
}
`

func TestVarbitSplitting(t *testing.T) {
	p, err := Transform(compile(t, varbitSrc))
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	// The header type lost its varbit part (fixed 16 bits remain).
	ht := p.Headers["opt_h"]
	if ht.HasVarbit || ht.BitWidth != 16 {
		t.Errorf("opt_h after split = %+v, want fixed 16 bits", ht)
	}
	// Per-size tail types exist for 1..4 bytes.
	for j := 1; j <= 4; j++ {
		tn := fmt.Sprintf("opt_h$vb%d", j)
		tt := p.Headers[tn]
		if tt == nil || tt.BitWidth != j*8 {
			t.Errorf("tail type %s = %+v", tn, tt)
		}
		if d := p.DeclByPath(fmt.Sprintf("$hdr.opt$vb%d", j)); d == nil {
			t.Errorf("missing tail instance %d", j)
		}
	}
	// The parser gained a size-dispatch select enumerating 0..4 bytes.
	start := p.Parser.State("start")
	if start.Trans.Kind != "select" || len(start.Trans.Cases) != 6 {
		t.Fatalf("start transition = %+v, want select with 6 cases (0..4 + reject default)", start.Trans)
	}
	if start.Trans.Cases[5].Target != "reject" || !start.Trans.Cases[5].Default {
		t.Errorf("oversized varbit should reject: %+v", start.Trans.Cases[5])
	}
	// Deparser emits the fixed part plus each tail.
	emits := 0
	for _, s := range p.Deparser {
		if s.Kind == ir.SEmit {
			emits++
		}
	}
	if emits != 5 {
		t.Errorf("deparser has %d emits, want 5 (fixed + 4 tails)", emits)
	}
}

func TestVarbitControlReadRejected(t *testing.T) {
	src := strings.Replace(varbitSrc, "h.opt.kind = 7;", "h.opt.kind = (bit<8>)h.opt.data;", 1)
	p, err := frontend.CompileModule("t.up4", src)
	if err != nil {
		// The frontend may reject the varbit read outright — also fine.
		return
	}
	if _, err := Transform(p); err == nil {
		t.Error("Transform accepted a control that reads variable-length data")
	}
}

func TestTransformPreservesInput(t *testing.T) {
	p := compile(t, stackSrc)
	before, err := p.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(p); err != nil {
		t.Fatal(err)
	}
	after, err := p.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("Transform mutated its input program")
	}
}
