// Package midend drives µP4C's target-agnostic middle end (paper §5.1):
// it applies the §C source transformations (header-stack unrolling,
// variable-length header splitting), links the module graph, runs the
// static analysis of §5.2, and homogenizes + composes everything into a
// single MAT-only pipeline (§5.3).
package midend

import (
	"fmt"
	"strings"

	"microp4/internal/analysis"
	"microp4/internal/ir"
	"microp4/internal/linker"
	"microp4/internal/mat"
	"microp4/internal/obs"
)

// Result bundles the midend outputs.
type Result struct {
	Linked   *linker.Linked
	Analysis *analysis.Result
	// Pipeline is the composed MAT pipeline; nil when composition is not
	// applicable (multi-packet orchestration programs, §5.4), in which
	// case ComposeErr explains why and the reference interpreter remains
	// available.
	Pipeline   *mat.Pipeline
	ComposeErr error
}

// Options tune the midend.
type Options struct {
	// Compose is forwarded to the homogenization/composition stage.
	Compose mat.Options
	// Timer, when non-nil, records per-stage wall time and IR sizes
	// (statement counts) for the transform, linker, analysis, and
	// composition stages.
	Timer *obs.PassTimer
}

// Build runs the full midend over a main program and its library modules.
// The inputs are not mutated.
func Build(main *ir.Program, mods ...*ir.Program) (*Result, error) {
	return BuildWith(Options{}, main, mods...)
}

// BuildWith is Build with explicit options.
func BuildWith(opts Options, main *ir.Program, mods ...*ir.Program) (*Result, error) {
	stop := opts.Timer.Time("transform")
	inStmts := main.StmtCount()
	tmain, err := Transform(main)
	if err != nil {
		return nil, err
	}
	tmods := make([]*ir.Program, 0, len(mods))
	for _, m := range mods {
		inStmts += m.StmtCount()
		tm, err := Transform(m)
		if err != nil {
			return nil, err
		}
		tmods = append(tmods, tm)
	}
	outStmts := tmain.StmtCount()
	for _, tm := range tmods {
		outStmts += tm.StmtCount()
	}
	stop(inStmts, outStmts)
	stop = opts.Timer.Time("linker")
	linked, err := linker.Link(tmain, tmods...)
	if err != nil {
		return nil, err
	}
	linkedStmts := linked.Main.StmtCount()
	for _, m := range linked.Modules {
		linkedStmts += m.StmtCount()
	}
	stop(outStmts, linkedStmts)
	stop = opts.Timer.Time("midend")
	res, err := analysis.Analyze(linked)
	if err != nil {
		return nil, err
	}
	stop(linkedStmts, linkedStmts)
	stop = opts.Timer.Time("compose")
	pl, err := mat.ComposeWith(linked, res, opts.Compose)
	if err != nil {
		if strings.Contains(err.Error(), "orchestration") {
			// Multi-packet programs run on the reference interpreter;
			// the compiled path needs the §5.4 PPS realization.
			return &Result{Linked: linked, Analysis: res, ComposeErr: err}, nil
		}
		return nil, err
	}
	stop(linkedStmts, ir.CountStmts(pl.Stmts))
	return &Result{Linked: linked, Analysis: res, Pipeline: pl}, nil
}

// Transform applies the §C per-module transformations, returning a new
// program: header stacks are replaced by indexed header instances with
// unrolled parser loops, and variable-length headers are split into a
// fixed part plus enumerated per-size tails.
func Transform(p *ir.Program) (*ir.Program, error) {
	q := p.Clone()
	if err := unrollStacks(q); err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	if err := splitVarbit(q); err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return q, nil
}

// stackElem returns the path of element i of a stack.
func stackElem(stack string, i int) string { return fmt.Sprintf("%s.%d", stack, i) }

// headerCopyStmts generates statements copying header src into dst,
// transferring validity: if src is valid, dst takes its fields and
// becomes valid; otherwise dst becomes invalid.
func headerCopyStmts(ht *ir.HeaderType, dst, src string) []*ir.Stmt {
	var then []*ir.Stmt
	then = append(then, &ir.Stmt{Kind: ir.SSetValid, Hdr: dst})
	for _, f := range ht.Fields {
		then = append(then, &ir.Stmt{
			Kind: ir.SAssign,
			LHS:  ir.Ref(dst+"."+f.Name, f.Width),
			RHS:  ir.Ref(src+"."+f.Name, f.Width),
		})
	}
	return []*ir.Stmt{{
		Kind: ir.SIf,
		Cond: &ir.Expr{Kind: ir.EIsValid, Ref: src, Width: 1, Bool: true},
		Then: then,
		Else: []*ir.Stmt{{Kind: ir.SSetInvalid, Hdr: dst}},
	}}
}
