// Package types resolves names and computes bit-level layout for µP4
// programs: header field widths and offsets, struct shapes, constant
// values, and expression types. Later compiler passes (frontend lowering,
// static analysis, MAT synthesis) assume a program that passed Check.
package types

import (
	"fmt"

	"microp4/internal/ast"
)

// Kind classifies a resolved type.
type Kind int

// Resolved type kinds.
const (
	KindInvalid Kind = iota
	KindBit
	KindBool
	KindVarbit
	KindHeader
	KindStruct
	KindStack
	KindExtern
	KindModule
)

// Type is a resolved µP4 type.
type Type struct {
	Kind     Kind
	Width    int    // KindBit
	MaxWidth int    // KindVarbit
	Name     string // KindHeader, KindStruct, KindExtern, KindModule
	Size     int    // KindStack
	Elem     *Type  // KindStack element
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KindBit:
		return fmt.Sprintf("bit<%d>", t.Width)
	case KindBool:
		return "bool"
	case KindVarbit:
		return fmt.Sprintf("varbit<%d>", t.MaxWidth)
	case KindHeader, KindStruct, KindExtern, KindModule:
		return t.Name
	case KindStack:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Size)
	}
	return "<invalid>"
}

// Bit returns a bit<w> type.
func Bit(w int) *Type { return &Type{Kind: KindBit, Width: w} }

// Bool is the boolean type.
var BoolType = &Type{Kind: KindBool}

// FieldInfo describes one header field.
type FieldInfo struct {
	Name     string
	Width    int // bit width; for varbit this is MaxWidth
	Offset   int // bit offset from header start (varbit max-width layout)
	Varbit   bool
	MaxWidth int
}

// HeaderInfo describes a header type.
type HeaderInfo struct {
	Name      string
	Fields    []FieldInfo
	BitWidth  int // total width with varbit at max
	HasVarbit bool
}

// Field returns the named field, or nil.
func (h *HeaderInfo) Field(name string) *FieldInfo {
	for i := range h.Fields {
		if h.Fields[i].Name == name {
			return &h.Fields[i]
		}
	}
	return nil
}

// ByteSize returns the header size in bytes (max size for varbit headers).
func (h *HeaderInfo) ByteSize() int { return (h.BitWidth + 7) / 8 }

// StructField is one field of a struct.
type StructField struct {
	Name string
	T    *Type
}

// StructInfo describes a struct type.
type StructInfo struct {
	Name   string
	Fields []StructField
}

// Field returns the named field's type, or nil.
func (s *StructInfo) Field(name string) *Type {
	for _, f := range s.Fields {
		if f.Name == name {
			return f.T
		}
	}
	return nil
}

// ConstInfo is a resolved compile-time constant.
type ConstInfo struct {
	Width int
	Value uint64
}

// Builtin extern type names of the µP4 architecture (paper Fig. 6).
var externNames = map[string]bool{
	"pkt": true, "im_t": true, "extractor": true, "emitter": true,
	"in_buf": true, "out_buf": true, "mc_buf": true, "mc_engine": true,
	// The §8.2 stateful extension: register arrays persisting across
	// packets, instantiated as `register(size, width) name;`.
	"register": true,
	// The flow-state extension: a connection table with timer-wheel
	// aging, instantiated as `flowtable(size, idleTTL, estTTL) name;`.
	"flowtable": true,
}

// IsExternName reports whether name is a µPA extern type.
func IsExternName(name string) bool { return externNames[name] }

// Intrinsic metadata enum (meta_t, paper Fig. 6). Values are indices the
// target backend maps to its own metadata.
var MetaFields = map[string]uint64{
	"IN_TIMESTAMP": 0, "OUT_TIMESTAMP": 1, "IN_PORT": 2, "PKT_LEN": 3,
	"INSTANCE_ID": 4, "QUEUE_DEPTH": 5, "DEQ_TIMESTAMP": 6, "ENQ_TIMESTAMP": 7,
}

// DropPort is the reserved output port meaning "drop" (used by im.drop()
// and the DROP constant, cf. Fig. 13).
const DropPort = 511

// Env is the resolved top-level environment of one compilation unit.
type Env struct {
	FileName string
	Headers  map[string]*HeaderInfo
	Structs  map[string]*StructInfo
	Consts   map[string]ConstInfo
	Protos   map[string]*ast.ModuleProtoDecl
	Programs map[string]*ast.ProgramDecl
	Main     *ast.InstantiationDecl // may be nil for library modules
	typedefs map[string]*Type
}

// NewEnv returns an empty environment with builtin constants.
func NewEnv(file string) *Env {
	e := &Env{
		FileName: file,
		Headers:  make(map[string]*HeaderInfo),
		Structs:  make(map[string]*StructInfo),
		Consts:   make(map[string]ConstInfo),
		Protos:   make(map[string]*ast.ModuleProtoDecl),
		Programs: make(map[string]*ast.ProgramDecl),
		typedefs: make(map[string]*Type),
	}
	for name, v := range MetaFields {
		e.Consts[name] = ConstInfo{Width: 32, Value: v}
	}
	e.Consts["DROP"] = ConstInfo{Width: 9, Value: DropPort}
	return e
}

type checkError struct {
	file string
	pos  ast.Pos
	msg  string
}

func (e *checkError) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.file, e.pos, e.msg)
}

func (env *Env) errf(pos ast.Pos, format string, args ...interface{}) error {
	return &checkError{file: env.FileName, pos: pos, msg: fmt.Sprintf(format, args...)}
}

// Check resolves and validates a source file, returning its environment.
func Check(f *ast.SourceFile) (*Env, error) {
	env := NewEnv(f.Name)
	// Pass 1: collect type declarations.
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.HeaderDecl:
			if err := env.addHeader(d); err != nil {
				return nil, err
			}
		case *ast.StructDecl:
			if err := env.addStruct(d); err != nil {
				return nil, err
			}
		case *ast.TypedefDecl:
			t, err := env.Resolve(d.Base)
			if err != nil {
				return nil, err
			}
			if env.defined(d.Name) {
				return nil, env.errf(d.P, "duplicate declaration of %s", d.Name)
			}
			env.typedefs[d.Name] = t
		case *ast.ConstDecl:
			t, err := env.Resolve(d.T)
			if err != nil {
				return nil, err
			}
			if t.Kind != KindBit && t.Kind != KindBool {
				return nil, env.errf(d.P, "const %s must have bit or bool type", d.Name)
			}
			v, err := env.EvalConst(d.Value)
			if err != nil {
				return nil, err
			}
			if _, dup := env.Consts[d.Name]; dup {
				return nil, env.errf(d.P, "duplicate constant %s", d.Name)
			}
			env.Consts[d.Name] = ConstInfo{Width: t.Width, Value: v}
		case *ast.ModuleProtoDecl:
			if _, dup := env.Protos[d.Name]; dup {
				return nil, env.errf(d.P, "duplicate module prototype %s", d.Name)
			}
			env.Protos[d.Name] = d
		case *ast.ProgramDecl:
			if _, dup := env.Programs[d.Name]; dup {
				return nil, env.errf(d.P, "duplicate program %s", d.Name)
			}
			env.Programs[d.Name] = d
		case *ast.InstantiationDecl:
			if env.Main != nil {
				return nil, env.errf(d.P, "duplicate main instantiation")
			}
			env.Main = d
		}
	}
	// Pass 2: validate prototypes and program bodies.
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.ModuleProtoDecl:
			if _, err := env.resolveParams(d.Params); err != nil {
				return nil, err
			}
		case *ast.ProgramDecl:
			if err := env.checkProgram(d); err != nil {
				return nil, err
			}
		}
	}
	if env.Main != nil {
		if _, ok := env.Programs[env.Main.TypeName]; !ok {
			return nil, env.errf(env.Main.P, "main instantiates unknown program %s", env.Main.TypeName)
		}
	}
	return env, nil
}

func (env *Env) defined(name string) bool {
	if _, ok := env.Headers[name]; ok {
		return true
	}
	if _, ok := env.Structs[name]; ok {
		return true
	}
	if _, ok := env.typedefs[name]; ok {
		return true
	}
	return externNames[name]
}

func (env *Env) addHeader(d *ast.HeaderDecl) error {
	if env.defined(d.Name) {
		return env.errf(d.P, "duplicate declaration of %s", d.Name)
	}
	h := &HeaderInfo{Name: d.Name}
	off := 0
	for _, f := range d.Fields {
		t, err := env.Resolve(f.T)
		if err != nil {
			return err
		}
		switch t.Kind {
		case KindBit:
			if t.Width > 64 {
				return env.errf(f.P, "header field %s.%s is bit<%d>; fields wider than 64 bits must be split (e.g. IPv6 addresses into two bit<64> halves)", d.Name, f.Name, t.Width)
			}
			h.Fields = append(h.Fields, FieldInfo{Name: f.Name, Width: t.Width, Offset: off})
			off += t.Width
		case KindVarbit:
			if h.HasVarbit {
				return env.errf(f.P, "header %s has more than one varbit field", d.Name)
			}
			if t.MaxWidth%8 != 0 {
				return env.errf(f.P, "varbit max width must be a whole number of bytes")
			}
			h.Fields = append(h.Fields, FieldInfo{
				Name: f.Name, Width: t.MaxWidth, Offset: off, Varbit: true, MaxWidth: t.MaxWidth,
			})
			h.HasVarbit = true
			off += t.MaxWidth
		default:
			return env.errf(f.P, "header field %s.%s must have bit or varbit type", d.Name, f.Name)
		}
	}
	if off%8 != 0 && !h.HasVarbit {
		return env.errf(d.P, "header %s is %d bits; headers must be a whole number of bytes", d.Name, off)
	}
	h.BitWidth = off
	env.Headers[d.Name] = h
	return nil
}

func (env *Env) addStruct(d *ast.StructDecl) error {
	if env.defined(d.Name) {
		return env.errf(d.P, "duplicate declaration of %s", d.Name)
	}
	s := &StructInfo{Name: d.Name}
	for _, f := range d.Fields {
		t, err := env.Resolve(f.T)
		if err != nil {
			return err
		}
		switch t.Kind {
		case KindBit, KindBool, KindHeader, KindStack, KindStruct:
			s.Fields = append(s.Fields, StructField{Name: f.Name, T: t})
		default:
			return env.errf(f.P, "struct field %s.%s has unsupported type %s", d.Name, f.Name, t)
		}
	}
	env.Structs[d.Name] = s
	return nil
}

// Resolve converts a syntactic type to a resolved type.
func (env *Env) Resolve(t ast.Type) (*Type, error) {
	switch t := t.(type) {
	case *ast.BitType:
		return Bit(t.Width), nil
	case *ast.BoolType:
		return BoolType, nil
	case *ast.VarbitType:
		return &Type{Kind: KindVarbit, MaxWidth: t.MaxWidth}, nil
	case *ast.StackType:
		elem, err := env.Resolve(t.Elem)
		if err != nil {
			return nil, err
		}
		if elem.Kind != KindHeader {
			return nil, env.errf(t.P, "header stack element must be a header type, got %s", elem)
		}
		return &Type{Kind: KindStack, Elem: elem, Size: t.Size}, nil
	case *ast.NamedType:
		if td, ok := env.typedefs[t.Name]; ok {
			return td, nil
		}
		if _, ok := env.Headers[t.Name]; ok {
			return &Type{Kind: KindHeader, Name: t.Name}, nil
		}
		if _, ok := env.Structs[t.Name]; ok {
			return &Type{Kind: KindStruct, Name: t.Name}, nil
		}
		if externNames[t.Name] {
			return &Type{Kind: KindExtern, Name: t.Name}, nil
		}
		if _, ok := env.Protos[t.Name]; ok {
			return &Type{Kind: KindModule, Name: t.Name}, nil
		}
		return nil, env.errf(t.P, "unknown type %s", t.Name)
	}
	return nil, fmt.Errorf("unhandled type node %T", t)
}

// EvalConst evaluates a compile-time constant expression.
func (env *Env) EvalConst(e ast.Expr) (uint64, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, nil
	case *ast.BoolLit:
		if e.Value {
			return 1, nil
		}
		return 0, nil
	case *ast.Ident:
		if c, ok := env.Consts[e.Name]; ok {
			return c.Value, nil
		}
		return 0, env.errf(e.P, "%s is not a constant", e.Name)
	case *ast.UnaryExpr:
		v, err := env.EvalConst(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "-":
			return -v, nil
		case "~":
			return ^v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *ast.BinaryExpr:
		x, err := env.EvalConst(e.X)
		if err != nil {
			return 0, err
		}
		y, err := env.EvalConst(e.Y)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, env.errf(e.P, "division by zero in constant expression")
			}
			return x / y, nil
		case "%":
			if y == 0 {
				return 0, env.errf(e.P, "modulo by zero in constant expression")
			}
			return x % y, nil
		case "<<":
			return x << (y & 63), nil
		case ">>":
			return x >> (y & 63), nil
		case "&":
			return x & y, nil
		case "|":
			return x | y, nil
		case "^":
			return x ^ y, nil
		}
	case *ast.CastExpr:
		return env.EvalConst(e.X)
	}
	return 0, env.errf(e.Pos(), "expression is not a compile-time constant")
}

func (env *Env) resolveParams(params []ast.Param) ([]*Type, error) {
	var out []*Type
	seen := make(map[string]bool)
	for _, p := range params {
		if seen[p.Name] {
			return nil, env.errf(p.P, "duplicate parameter %s", p.Name)
		}
		seen[p.Name] = true
		t, err := env.Resolve(p.T)
		if err != nil {
			return nil, err
		}
		if t.Kind == KindExtern && p.Dir != ast.DirNone {
			return nil, env.errf(p.P, "extern parameter %s cannot have a direction", p.Name)
		}
		out = append(out, t)
	}
	return out, nil
}
