package types

import (
	"microp4/internal/ast"
)

// checkCall validates a call expression and returns its result type
// (nil for void calls). cc may be nil when calls are checked in pure
// expression position (no tables available there).
func (env *Env) checkCall(sc *Scope, cc *ctrlCtx, call *ast.CallExpr, inParser bool) (*Type, error) {
	fe, ok := call.Fun.(*ast.FieldExpr)
	if !ok {
		// Free function: only recirculate<D>(data) is defined by µPA.
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recirculate" {
			if len(call.Args) != 1 {
				return nil, env.errf(call.P, "recirculate takes 1 argument")
			}
			if _, err := env.TypeOf(sc, call.Args[0]); err != nil {
				return nil, err
			}
			return nil, nil
		}
		return nil, env.errf(call.P, "call of non-method expression")
	}
	method := fe.Name

	// Header validity methods work on any header-typed receiver.
	recvT, err := env.TypeOf(sc, fe.X)
	if err == nil && (recvT.Kind == KindHeader || recvT.Kind == KindStack) {
		return env.checkHeaderMethod(sc, call, recvT, method)
	}
	// Table apply: receiver is a bare identifier naming a table.
	if id, ok := fe.X.(*ast.Ident); ok && cc != nil {
		if _, isTable := cc.tables[id.Name]; isTable {
			if method != "apply" {
				return nil, env.errf(call.P, "table %s has no method %s", id.Name, method)
			}
			if len(call.Args) != 0 {
				return nil, env.errf(call.P, "table apply takes no arguments")
			}
			return nil, nil
		}
	}
	if err != nil {
		return nil, err
	}
	switch recvT.Kind {
	case KindExtern:
		return env.checkExternMethod(sc, call, recvT.Name, method, inParser)
	case KindModule:
		return env.checkModuleApply(sc, call, recvT.Name, method)
	}
	return nil, env.errf(call.P, "%s has no method %s", recvT, method)
}

func (env *Env) checkHeaderMethod(sc *Scope, call *ast.CallExpr, recvT *Type, method string) (*Type, error) {
	switch method {
	case "isValid":
		if len(call.Args) != 0 {
			return nil, env.errf(call.P, "isValid takes no arguments")
		}
		return BoolType, nil
	case "setValid", "setInvalid":
		if recvT.Kind != KindHeader {
			return nil, env.errf(call.P, "%s requires a header instance", method)
		}
		if len(call.Args) != 0 {
			return nil, env.errf(call.P, "%s takes no arguments", method)
		}
		return nil, nil
	case "push_front", "pop_front":
		if recvT.Kind != KindStack {
			return nil, env.errf(call.P, "%s requires a header stack", method)
		}
		if len(call.Args) != 1 {
			return nil, env.errf(call.P, "%s takes 1 argument", method)
		}
		if _, err := env.EvalConst(call.Args[0]); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return nil, env.errf(call.P, "header has no method %s", method)
}

// externSig describes a fixed extern method signature: the kinds expected
// for each argument. kindAny matches anything; kindBits matches any
// bit-typed expression; kindHdr matches headers and stacks.
type argKind int

const (
	kindAny argKind = iota
	kindBits
	kindHdr
	kindPkt
	kindIm
	kindBuf
)

func (env *Env) matchArg(sc *Scope, e ast.Expr, k argKind) bool {
	t, err := env.TypeOf(sc, e)
	if err != nil {
		return false
	}
	switch k {
	case kindAny:
		return true
	case kindBits:
		return t.Kind == KindBit || t.Kind == KindBool
	case kindHdr:
		return t.Kind == KindHeader || t.Kind == KindStack || t.Kind == KindStruct || t.Kind == KindVarbit
	case kindPkt:
		return t.Kind == KindExtern && t.Name == "pkt"
	case kindIm:
		return t.Kind == KindExtern && t.Name == "im_t"
	case kindBuf:
		return t.Kind == KindExtern && (t.Name == "in_buf" || t.Name == "out_buf" || t.Name == "mc_buf")
	}
	return false
}

func (env *Env) checkArgs(sc *Scope, call *ast.CallExpr, kinds ...argKind) error {
	if len(call.Args) != len(kinds) {
		return env.errf(call.P, "method takes %d arguments, got %d", len(kinds), len(call.Args))
	}
	for i, a := range call.Args {
		if !env.matchArg(sc, a, kinds[i]) {
			// Re-derive the underlying error for a better message.
			if _, err := env.TypeOf(sc, a); err != nil {
				return err
			}
			return env.errf(a.Pos(), "argument %d has wrong type", i+1)
		}
	}
	return nil
}

func (env *Env) checkExternMethod(sc *Scope, call *ast.CallExpr, extern, method string, inParser bool) (*Type, error) {
	switch extern {
	case "extractor":
		switch method {
		case "extract":
			if !inParser {
				return nil, env.errf(call.P, "extract is only allowed in parsers")
			}
			switch len(call.Args) {
			case 2:
				return nil, env.checkArgs(sc, call, kindPkt, kindHdr)
			case 3:
				return nil, env.checkArgs(sc, call, kindPkt, kindHdr, kindBits)
			default:
				return nil, env.errf(call.P, "extract takes 2 or 3 arguments")
			}
		case "lookahead":
			return nil, env.errf(call.P, "lookahead is not supported by this implementation")
		}
	case "emitter":
		if method == "emit" {
			return nil, env.checkArgs(sc, call, kindPkt, kindHdr)
		}
	case "pkt":
		if method == "copy_from" {
			return nil, env.checkArgs(sc, call, kindPkt)
		}
	case "im_t":
		switch method {
		case "set_out_port":
			return nil, env.checkArgs(sc, call, kindBits)
		case "get_out_port":
			if err := env.checkArgs(sc, call); err != nil {
				return nil, err
			}
			return Bit(9), nil
		case "get_value":
			if err := env.checkArgs(sc, call, kindBits); err != nil {
				return nil, err
			}
			return Bit(32), nil
		case "drop":
			return nil, env.checkArgs(sc, call)
		case "copy_from":
			return nil, env.checkArgs(sc, call, kindIm)
		case "digest":
			return nil, env.checkArgs(sc, call, kindBits)
		}
	case "mc_engine":
		switch method {
		case "set_mc_group":
			return nil, env.checkArgs(sc, call, kindBits)
		case "apply":
			switch len(call.Args) {
			case 2:
				return nil, env.checkArgs(sc, call, kindIm, kindBits)
			case 3:
				return nil, env.checkArgs(sc, call, kindPkt, kindIm, kindAny)
			default:
				return nil, env.errf(call.P, "mc_engine.apply takes 2 or 3 arguments")
			}
		case "set_buf":
			return nil, env.checkArgs(sc, call, kindBuf)
		}
	case "out_buf":
		switch method {
		case "enqueue":
			if len(call.Args) < 2 {
				return nil, env.errf(call.P, "enqueue takes at least pkt and im arguments")
			}
			kinds := []argKind{kindPkt, kindIm}
			for i := 2; i < len(call.Args); i++ {
				kinds = append(kinds, kindAny)
			}
			return nil, env.checkArgs(sc, call, kinds...)
		case "merge":
			return nil, env.checkArgs(sc, call, kindBuf)
		case "to_in_buf":
			return nil, env.checkArgs(sc, call, kindBuf)
		}
	case "mc_buf":
		if method == "enqueue" {
			if len(call.Args) < 2 {
				return nil, env.errf(call.P, "mc_buf.enqueue takes header, im, and out-args")
			}
			return nil, nil
		}
	case "register":
		switch method {
		case "read":
			// read(out value, index)
			if err := env.checkArgs(sc, call, kindBits, kindBits); err != nil {
				return nil, err
			}
			if !isLValue(call.Args[0]) {
				return nil, env.errf(call.P, "register read destination must be assignable")
			}
			return nil, nil
		case "write":
			return nil, env.checkArgs(sc, call, kindBits, kindBits)
		}
	case "flowtable":
		switch method {
		case "upsert":
			// upsert(out hit, dir, srcAddr, dstAddr, proto, srcPort, dstPort)
			if err := env.checkArgs(sc, call, kindBits, kindBits, kindBits,
				kindBits, kindBits, kindBits, kindBits); err != nil {
				return nil, err
			}
			if !isLValue(call.Args[0]) {
				return nil, env.errf(call.P, "flowtable upsert hit destination must be assignable")
			}
			return nil, nil
		case "stick":
			// stick(out hit, out val, want, srcAddr, dstAddr, proto, srcPort, dstPort)
			if err := env.checkArgs(sc, call, kindBits, kindBits, kindBits,
				kindBits, kindBits, kindBits, kindBits, kindBits); err != nil {
				return nil, err
			}
			if !isLValue(call.Args[0]) || !isLValue(call.Args[1]) {
				return nil, env.errf(call.P, "flowtable stick hit and value destinations must be assignable")
			}
			return nil, nil
		}
	case "in_buf":
		return nil, env.errf(call.P, "in_buf.%s is not user-callable (used only by the architecture)", method)
	}
	return nil, env.errf(call.P, "extern %s has no method %s", extern, method)
}

func (env *Env) checkModuleApply(sc *Scope, call *ast.CallExpr, module, method string) (*Type, error) {
	if method != "apply" {
		return nil, env.errf(call.P, "module %s has no method %s", module, method)
	}
	proto := env.Protos[module]
	if proto == nil {
		return nil, env.errf(call.P, "unknown module %s", module)
	}
	if len(call.Args) != len(proto.Params) {
		return nil, env.errf(call.P, "module %s takes %d arguments, got %d", module, len(proto.Params), len(call.Args))
	}
	for i, a := range call.Args {
		pt, err := env.Resolve(proto.Params[i].T)
		if err != nil {
			return nil, err
		}
		at, err := env.TypeOf(sc, a)
		if err != nil {
			return nil, err
		}
		if pt.Kind == KindExtern {
			if at.Kind != KindExtern || at.Name != pt.Name {
				return nil, env.errf(a.Pos(), "argument %d must be %s", i+1, pt.Name)
			}
			continue
		}
		if !assignable(pt, at) && !assignable(at, pt) {
			return nil, env.errf(a.Pos(), "argument %d: cannot pass %s as %s", i+1, at, pt)
		}
		if proto.Params[i].Dir == ast.DirOut || proto.Params[i].Dir == ast.DirInOut {
			if !isLValue(a) {
				return nil, env.errf(a.Pos(), "argument %d to %s parameter must be assignable", i+1, proto.Params[i].Dir)
			}
		}
	}
	return nil, nil
}
