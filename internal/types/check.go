package types

import (
	"fmt"

	"microp4/internal/ast"
)

// Scope maps visible variable names to their types.
type Scope struct {
	parent *Scope
	vars   map[string]*Type
}

// NewScope returns a scope nested in parent (which may be nil).
func NewScope(parent *Scope) *Scope {
	return &Scope{parent: parent, vars: make(map[string]*Type)}
}

// Declare binds name to t in this scope.
func (s *Scope) Declare(name string, t *Type) { s.vars[name] = t }

// Lookup resolves name, searching enclosing scopes.
func (s *Scope) Lookup(name string) *Type {
	for sc := s; sc != nil; sc = sc.parent {
		if t, ok := sc.vars[name]; ok {
			return t
		}
	}
	return nil
}

// DeclaredHere reports whether name is declared in this exact scope.
func (s *Scope) DeclaredHere(name string) bool {
	_, ok := s.vars[name]
	return ok
}

// ctrlCtx carries per-control declarations while checking a control body.
type ctrlCtx struct {
	actions map[string]*ast.ActionDecl
	tables  map[string]*ast.TableDecl
}

// ProgramInterfaces supported by µPA (§4.1).
var ProgramInterfaces = map[string]bool{
	"Unicast": true, "Multicast": true, "Orchestration": true,
}

func (env *Env) checkProgram(d *ast.ProgramDecl) error {
	if !ProgramInterfaces[d.Interface] {
		return env.errf(d.P, "program %s implements unknown interface %s", d.Name, d.Interface)
	}
	if d.Parser == nil && d.Interface != "Orchestration" {
		return env.errf(d.P, "program %s has no parser block", d.Name)
	}
	if len(d.Controls) == 0 {
		return env.errf(d.P, "program %s has no control blocks", d.Name)
	}
	if d.Parser != nil {
		if err := env.checkParser(d.Parser); err != nil {
			return err
		}
	}
	for _, c := range d.Controls {
		if err := env.checkControl(c); err != nil {
			return err
		}
	}
	return nil
}

// IsDeparser reports whether a control block is a deparser: it takes an
// emitter parameter.
func IsDeparser(c *ast.ControlDecl) bool {
	for _, p := range c.Params {
		if nt, ok := p.T.(*ast.NamedType); ok && nt.Name == "emitter" {
			return true
		}
	}
	return false
}

func (env *Env) paramScope(params []ast.Param) (*Scope, error) {
	ts, err := env.resolveParams(params)
	if err != nil {
		return nil, err
	}
	sc := NewScope(nil)
	for i, p := range params {
		sc.Declare(p.Name, ts[i])
	}
	return sc, nil
}

func (env *Env) checkParser(pd *ast.ParserDecl) error {
	sc, err := env.paramScope(pd.Params)
	if err != nil {
		return err
	}
	for _, v := range pd.Locals {
		t, err := env.Resolve(v.T)
		if err != nil {
			return err
		}
		sc.Declare(v.Name, t)
	}
	states := map[string]bool{ast.StateAccept: true, ast.StateReject: true}
	for _, st := range pd.States {
		if states[st.Name] {
			return env.errf(st.P, "duplicate state %s", st.Name)
		}
		states[st.Name] = true
	}
	if !states[ast.StateStart] {
		return env.errf(pd.P, "parser %s has no start state", pd.Name)
	}
	for _, st := range pd.States {
		for _, s := range st.Stmts {
			if err := env.checkStmt(sc, nil, s, true); err != nil {
				return err
			}
		}
		switch tr := st.Trans.(type) {
		case nil:
			// implicit reject
		case *ast.DirectTransition:
			if !states[tr.Target] {
				return env.errf(tr.P, "transition to unknown state %s", tr.Target)
			}
		case *ast.SelectTransition:
			for _, e := range tr.Exprs {
				t, err := env.TypeOf(sc, e)
				if err != nil {
					return err
				}
				if t.Kind != KindBit && t.Kind != KindBool {
					return env.errf(e.Pos(), "select expression must have bit type, got %s", t)
				}
			}
			for _, c := range tr.Cases {
				if !states[c.Target] {
					return env.errf(c.P, "transition to unknown state %s", c.Target)
				}
				for i, v := range c.Values {
					if v == nil {
						continue // don't-care
					}
					if _, err := env.EvalConst(v); err != nil {
						return err
					}
					if c.Masks[i] != nil {
						if _, err := env.EvalConst(c.Masks[i]); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

func (env *Env) checkControl(cd *ast.ControlDecl) error {
	sc, err := env.paramScope(cd.Params)
	if err != nil {
		return err
	}
	cc := &ctrlCtx{
		actions: make(map[string]*ast.ActionDecl),
		tables:  make(map[string]*ast.TableDecl),
	}
	for _, l := range cd.Locals {
		switch l := l.(type) {
		case *ast.VarDecl:
			t, err := env.Resolve(l.T)
			if err != nil {
				return err
			}
			if l.Init != nil {
				if _, err := env.TypeOf(sc, l.Init); err != nil {
					return err
				}
			}
			sc.Declare(l.Name, t)
		case *ast.InstDecl:
			if externNames[l.TypeName] {
				sc.Declare(l.Name, &Type{Kind: KindExtern, Name: l.TypeName})
				continue
			}
			if _, ok := env.Protos[l.TypeName]; !ok {
				return env.errf(l.P, "instantiation of unknown module or extern %s", l.TypeName)
			}
			sc.Declare(l.Name, &Type{Kind: KindModule, Name: l.TypeName})
		case *ast.ActionDecl:
			if _, dup := cc.actions[l.Name]; dup {
				return env.errf(l.P, "duplicate action %s", l.Name)
			}
			cc.actions[l.Name] = l
			asc := NewScope(sc)
			ts, err := env.resolveParams(l.Params)
			if err != nil {
				return err
			}
			for i, p := range l.Params {
				asc.Declare(p.Name, ts[i])
			}
			for _, s := range l.Body.Stmts {
				if err := env.checkStmt(asc, cc, s, false); err != nil {
					return err
				}
			}
		case *ast.TableDecl:
			if _, dup := cc.tables[l.Name]; dup {
				return env.errf(l.P, "duplicate table %s", l.Name)
			}
			cc.tables[l.Name] = l
			if err := env.checkTable(sc, cc, l); err != nil {
				return err
			}
		}
	}
	for _, s := range cd.Apply.Stmts {
		if err := env.checkStmt(sc, cc, s, false); err != nil {
			return err
		}
	}
	cd.IsDecap = IsDeparser(cd)
	return nil
}

func (env *Env) checkTable(sc *Scope, cc *ctrlCtx, td *ast.TableDecl) error {
	for _, k := range td.Keys {
		t, err := env.TypeOf(sc, k.Expr)
		if err != nil {
			return err
		}
		if t.Kind != KindBit && t.Kind != KindBool {
			return env.errf(k.P, "table key must have bit type, got %s", t)
		}
	}
	checkRef := func(ar *ast.ActionRef) error {
		a, ok := cc.actions[ar.Name]
		if !ok {
			return env.errf(ar.P, "table %s references unknown action %s", td.Name, ar.Name)
		}
		if len(ar.Args) > 0 && len(ar.Args) != len(a.Params) {
			return env.errf(ar.P, "action %s takes %d arguments, got %d", ar.Name, len(a.Params), len(ar.Args))
		}
		for _, arg := range ar.Args {
			if _, err := env.EvalConst(arg); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range td.Actions {
		if err := checkRef(&td.Actions[i]); err != nil {
			return err
		}
	}
	if td.DefaultAction != nil {
		if err := checkRef(td.DefaultAction); err != nil {
			return err
		}
		a := cc.actions[td.DefaultAction.Name]
		if len(td.DefaultAction.Args) == 0 && len(a.Params) > 0 {
			return env.errf(td.DefaultAction.P, "default_action %s needs %d bound arguments", a.Name, len(a.Params))
		}
	}
	for _, ent := range td.Entries {
		if len(ent.Keys) != len(td.Keys) {
			return env.errf(ent.P, "entry has %d keys, table %s has %d", len(ent.Keys), td.Name, len(td.Keys))
		}
		for _, ks := range ent.Keys {
			if ks.DontCare {
				continue
			}
			if _, err := env.EvalConst(ks.Value); err != nil {
				return err
			}
			if ks.Mask != nil {
				if _, err := env.EvalConst(ks.Mask); err != nil {
					return err
				}
			}
		}
		if err := checkRef(&ent.Action); err != nil {
			return err
		}
		a := cc.actions[ent.Action.Name]
		if len(ent.Action.Args) != len(a.Params) {
			return env.errf(ent.P, "entry action %s needs %d arguments, got %d", a.Name, len(a.Params), len(ent.Action.Args))
		}
	}
	return nil
}

func (env *Env) checkStmt(sc *Scope, cc *ctrlCtx, s ast.Stmt, inParser bool) error {
	switch s := s.(type) {
	case *ast.BlockStmt:
		inner := NewScope(sc)
		for _, st := range s.Stmts {
			if err := env.checkStmt(inner, cc, st, inParser); err != nil {
				return err
			}
		}
		return nil
	case *ast.EmptyStmt, *ast.ExitStmt:
		return nil
	case *ast.VarDeclStmt:
		t, err := env.Resolve(s.Decl.T)
		if err != nil {
			return err
		}
		if s.Decl.Init != nil {
			if _, err := env.TypeOf(sc, s.Decl.Init); err != nil {
				return err
			}
		}
		if sc.DeclaredHere(s.Decl.Name) {
			return env.errf(s.Decl.P, "duplicate variable %s", s.Decl.Name)
		}
		sc.Declare(s.Decl.Name, t)
		return nil
	case *ast.AssignStmt:
		lt, err := env.TypeOf(sc, s.LHS)
		if err != nil {
			return err
		}
		if !isLValue(s.LHS) {
			return env.errf(s.P, "left side of assignment is not assignable")
		}
		rt, err := env.TypeOf(sc, s.RHS)
		if err != nil {
			return err
		}
		if !assignable(lt, rt) {
			return env.errf(s.P, "cannot assign %s to %s", rt, lt)
		}
		return nil
	case *ast.CallStmt:
		_, err := env.checkCall(sc, cc, s.Call, inParser)
		return err
	case *ast.IfStmt:
		t, err := env.TypeOf(sc, s.Cond)
		if err != nil {
			return err
		}
		if t.Kind != KindBool {
			return env.errf(s.P, "if condition must be boolean, got %s", t)
		}
		if err := env.checkStmt(sc, cc, s.Then, inParser); err != nil {
			return err
		}
		if s.Else != nil {
			return env.checkStmt(sc, cc, s.Else, inParser)
		}
		return nil
	case *ast.SwitchStmt:
		t, err := env.TypeOf(sc, s.Expr)
		if err != nil {
			return err
		}
		if t.Kind != KindBit {
			return env.errf(s.P, "switch expression must have bit type, got %s", t)
		}
		for _, c := range s.Cases {
			for _, v := range c.Values {
				if _, err := env.EvalConst(v); err != nil {
					return err
				}
			}
			if err := env.checkStmt(sc, cc, c.Body, inParser); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unhandled statement %T", s)
}

func isLValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.FieldExpr:
		return isLValue(e.X)
	case *ast.IndexExpr:
		return isLValue(e.X)
	case *ast.SliceExpr:
		return isLValue(e.X)
	}
	return false
}

// assignable reports whether a value of type rt can be assigned to lt.
// Unsized literals (Bit(0)) adapt to any bit type.
func assignable(lt, rt *Type) bool {
	if lt.Kind == KindBit && rt.Kind == KindBit {
		return lt.Width == rt.Width || rt.Width == 0 || lt.Width == 0
	}
	if lt.Kind != rt.Kind {
		return false
	}
	switch lt.Kind {
	case KindBool:
		return true
	case KindHeader, KindStruct:
		return lt.Name == rt.Name
	case KindStack:
		return lt.Elem.Name == rt.Elem.Name && lt.Size == rt.Size
	case KindVarbit:
		return true
	}
	return false
}

// TypeOf computes the type of an expression in scope sc.
func (env *Env) TypeOf(sc *Scope, e ast.Expr) (*Type, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return Bit(e.Width), nil // width 0 = unsized literal
	case *ast.BoolLit:
		return BoolType, nil
	case *ast.Ident:
		if t := sc.Lookup(e.Name); t != nil {
			return t, nil
		}
		if c, ok := env.Consts[e.Name]; ok {
			return Bit(c.Width), nil
		}
		return nil, env.errf(e.P, "undefined: %s", e.Name)
	case *ast.FieldExpr:
		return env.typeOfField(sc, e)
	case *ast.IndexExpr:
		xt, err := env.TypeOf(sc, e.X)
		if err != nil {
			return nil, err
		}
		if xt.Kind != KindStack {
			return nil, env.errf(e.P, "indexing non-stack type %s", xt)
		}
		idx, err := env.EvalConst(e.Index)
		if err != nil {
			return nil, err
		}
		if int(idx) >= xt.Size {
			return nil, env.errf(e.P, "stack index %d out of range [0,%d)", idx, xt.Size)
		}
		return xt.Elem, nil
	case *ast.SliceExpr:
		xt, err := env.TypeOf(sc, e.X)
		if err != nil {
			return nil, err
		}
		if xt.Kind != KindBit {
			return nil, env.errf(e.P, "bit-slicing non-bit type %s", xt)
		}
		if xt.Width != 0 && e.Hi >= xt.Width {
			return nil, env.errf(e.P, "slice [%d:%d] out of range for %s", e.Hi, e.Lo, xt)
		}
		return Bit(e.Hi - e.Lo + 1), nil
	case *ast.CastExpr:
		t, err := env.Resolve(e.T)
		if err != nil {
			return nil, err
		}
		if _, err := env.TypeOf(sc, e.X); err != nil {
			return nil, err
		}
		return t, nil
	case *ast.UnaryExpr:
		xt, err := env.TypeOf(sc, e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "!":
			if xt.Kind != KindBool {
				return nil, env.errf(e.P, "operator ! requires bool, got %s", xt)
			}
			return BoolType, nil
		default:
			if xt.Kind != KindBit {
				return nil, env.errf(e.P, "operator %s requires bit type, got %s", e.Op, xt)
			}
			return xt, nil
		}
	case *ast.BinaryExpr:
		xt, err := env.TypeOf(sc, e.X)
		if err != nil {
			return nil, err
		}
		yt, err := env.TypeOf(sc, e.Y)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "&&", "||":
			if xt.Kind != KindBool || yt.Kind != KindBool {
				return nil, env.errf(e.P, "operator %s requires bool operands", e.Op)
			}
			return BoolType, nil
		case "==", "!=":
			if !assignable(xt, yt) && !assignable(yt, xt) {
				return nil, env.errf(e.P, "cannot compare %s and %s", xt, yt)
			}
			return BoolType, nil
		case "<", ">", "<=", ">=":
			if xt.Kind != KindBit || yt.Kind != KindBit {
				return nil, env.errf(e.P, "operator %s requires bit operands", e.Op)
			}
			return BoolType, nil
		case "++":
			if xt.Kind != KindBit || yt.Kind != KindBit || xt.Width == 0 || yt.Width == 0 {
				return nil, env.errf(e.P, "operator ++ requires sized bit operands")
			}
			return Bit(xt.Width + yt.Width), nil
		default:
			if xt.Kind != KindBit || yt.Kind != KindBit {
				return nil, env.errf(e.P, "operator %s requires bit operands, got %s and %s", e.Op, xt, yt)
			}
			w := xt.Width
			if w == 0 {
				w = yt.Width
			}
			if yt.Width != 0 && xt.Width != 0 && xt.Width != yt.Width {
				return nil, env.errf(e.P, "operator %s requires equal widths, got %s and %s", e.Op, xt, yt)
			}
			return Bit(w), nil
		}
	case *ast.CallExpr:
		return env.checkCall(sc, nil, e, false)
	}
	return nil, fmt.Errorf("unhandled expression %T", e)
}

func (env *Env) typeOfField(sc *Scope, e *ast.FieldExpr) (*Type, error) {
	xt, err := env.TypeOf(sc, e.X)
	if err != nil {
		return nil, err
	}
	switch xt.Kind {
	case KindStruct:
		si := env.Structs[xt.Name]
		if t := si.Field(e.Name); t != nil {
			return t, nil
		}
		return nil, env.errf(e.P, "struct %s has no field %s", xt.Name, e.Name)
	case KindHeader:
		hi := env.Headers[xt.Name]
		if f := hi.Field(e.Name); f != nil {
			if f.Varbit {
				return &Type{Kind: KindVarbit, MaxWidth: f.MaxWidth}, nil
			}
			return Bit(f.Width), nil
		}
		return nil, env.errf(e.P, "header %s has no field %s", xt.Name, e.Name)
	case KindStack:
		switch e.Name {
		case "next", "last":
			return xt.Elem, nil
		case "lastIndex":
			return Bit(32), nil
		}
		return nil, env.errf(e.P, "header stack has no member %s", e.Name)
	}
	return nil, env.errf(e.P, "%s has no member %s", xt, e.Name)
}
