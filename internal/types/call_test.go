package types

import "testing"

// progWith wraps a control body in a full program for checking.
func progWith(body string) string {
	return `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct hdr_t { ethernet_h eth; }
program W : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) { ` + body + ` }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
}
`
}

func TestExternMethodMisuse(t *testing.T) {
	cases := []struct{ name, body, want string }{
		{"header-bad-method", `apply { h.eth.frobnicate(); }`, "no method"},
		{"isvalid-args", `apply { if (h.eth.isValid(1)) { } }`, "no arguments"},
		{"setvalid-args", `apply { h.eth.setValid(1); }`, "takes no arguments"},
		{"im-bad", `apply { im.teleport(); }`, "no method"},
		{"im-get-value-arity", `bit<32> v; apply { v = im.get_value(IN_PORT, 2); }`, "argument"},
		{"copy-from-type", `apply { im.copy_from(p); }`, "wrong type"},
		{"pkt-bad", `apply { p.reverse(); }`, "no method"},
		{"register-read-const-dst", `register(8, 16) r; apply { r.read(5, 0); }`, "assignable"},
		{"register-bad-method", `register(8, 16) r; apply { r.increment(0); }`, "no method"},
		{"mc-set-group-arity", `mc_engine() mce; apply { mce.set_mc_group(); }`, "arguments"},
		{"recirculate-arity", `apply { recirculate(1, 2); }`, "1 argument"},
		{"digest-arity", `apply { im.digest(); }`, "argument"},
		{"lookahead-unsupported", ``, ""}, // placeholder; covered below
	}
	for _, c := range cases {
		if c.body == "" {
			continue
		}
		checkErr(t, progWith(c.body), c.want)
	}
}

func TestLookaheadRejected(t *testing.T) {
	src := `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct hdr_t { ethernet_h eth; }
program W : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start { ex.lookahead(p); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
`
	checkErr(t, src, "lookahead")
}

func TestModuleApplyMisuse(t *testing.T) {
	prelude := `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct hdr_t { ethernet_h eth; }
M(pkt p, im_t im, out bit<16> nh);
`
	wrap := func(body string) string {
		return prelude + `
program W : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start { transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    bit<16> nh;
    M() m_i;
    ` + body + `
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
`
	}
	checkErr(t, wrap(`apply { m_i.run(p, im, nh); }`), "no method")
	checkErr(t, wrap(`apply { m_i.apply(p, im); }`), "takes 3 arguments")
	checkErr(t, wrap(`apply { m_i.apply(p, p, nh); }`), "must be im_t")
	checkErr(t, wrap(`apply { m_i.apply(p, im, 5); }`), "must be assignable")
	checkErr(t, wrap(`apply { m_i.apply(p, im, h.eth.dstMac); }`), "cannot pass")
	// A correct call checks out.
	mustCheck(t, wrap(`apply { m_i.apply(p, im, nh); }`))
}

func TestRegisterTypechecks(t *testing.T) {
	mustCheck(t, progWith(`
    register(64, 32) counters;
    bit<32> v;
    apply {
      counters.read(v, (bit<32>)h.eth.etherType);
      v = v + 1;
      counters.write((bit<32>)h.eth.etherType, v);
    }`))
}

func TestMulticastTypechecks(t *testing.T) {
	mustCheck(t, progWith(`
    mc_engine() mce;
    bit<16> id;
    action replicate(bit<16> gid) { mce.set_mc_group(gid); }
    table mcast { key = { h.eth.dstMac : exact; } actions = { replicate; } }
    apply {
      mcast.apply();
      mce.apply(im, id);
    }`))
}
