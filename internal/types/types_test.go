package types

import (
	"strings"
	"testing"

	"microp4/internal/parser"
)

func mustCheck(t *testing.T, src string) *Env {
	t.Helper()
	f, err := parser.ParseFile("test.up4", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	env, err := Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return env
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	f, err := parser.ParseFile("test.up4", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(f)
	if err == nil {
		t.Fatalf("Check succeeded, want error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error = %q, want substring %q", err, wantSub)
	}
}

const prelude = `
struct empty_t { }
header ethernet_h {
  bit<48> dstMac;
  bit<48> srcMac;
  bit<16> etherType;
}
header ipv4_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
struct hdr_t { ethernet_h eth; ipv4_h ipv4; }
`

func TestHeaderLayout(t *testing.T) {
	env := mustCheck(t, prelude+`
program X : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } }
  control C(pkt p, inout hdr_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}`)
	eth := env.Headers["ethernet_h"]
	if eth == nil || eth.BitWidth != 112 || eth.ByteSize() != 14 {
		t.Fatalf("ethernet_h = %+v, want 112 bits / 14 bytes", eth)
	}
	if f := eth.Field("etherType"); f == nil || f.Offset != 96 || f.Width != 16 {
		t.Errorf("etherType = %+v, want offset 96 width 16", f)
	}
	ip := env.Headers["ipv4_h"]
	if ip.BitWidth != 160 || ip.ByteSize() != 20 {
		t.Errorf("ipv4_h = %d bits, want 160", ip.BitWidth)
	}
	if f := ip.Field("ttl"); f.Offset != 64 {
		t.Errorf("ttl offset = %d, want 64", f.Offset)
	}
}

func TestCheckGoodProgram(t *testing.T) {
	mustCheck(t, prelude+`
L3(pkt p, im_t im, out bit<16> nh, inout bit<16> etype);
program ModularRouter : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x0800: parse_ipv4;
        default: accept;
      };
    }
    state parse_ipv4 { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    bit<16> nh;
    L3() l3_i;
    action drop_it() { im.drop(); }
    action forward(bit<48> dmac, bit<9> port) {
      h.eth.dstMac = dmac;
      im.set_out_port(port);
    }
    table forward_tbl {
      key = { nh : exact; }
      actions = { forward; drop_it; }
      default_action = drop_it;
    }
    apply {
      l3_i.apply(p, im, nh, h.eth.etherType);
      if (h.ipv4.isValid()) {
        h.ipv4.ttl = h.ipv4.ttl - 1;
      }
      forward_tbl.apply();
    }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.ipv4); }
  }
}
ModularRouter(P, C, D) main;
`)
}

func TestCheckErrors(t *testing.T) {
	progWrap := func(ctrl string) string {
		return prelude + `
program X : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } }
  control C(pkt p, inout hdr_t h, im_t im) { ` + ctrl + ` }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}`
	}
	cases := []struct{ src, want string }{
		{prelude + `header dup_h { bit<8> f; } header dup_h { bit<8> g; }
program X : implements Unicast { parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } } control C(pkt p) { apply {} } }`, "duplicate"},
		{progWrap(`apply { h.eth.bogus = 1; }`), "no field bogus"},
		{progWrap(`apply { h.eth.dstMac = h.eth.etherType; }`), "cannot assign"},
		{progWrap(`apply { undefined_tbl.apply(); }`), "undefined"},
		{progWrap(`apply { if (h.eth.etherType) { } }`), "boolean"},
		{progWrap(`apply { im.set_out_port(); }`), "arguments"},
		{progWrap(`table t { key = { h.eth : exact; } actions = { } } apply { t.apply(); }`), "bit type"},
		{progWrap(`action a(bit<8> x) { } table t { key = { h.eth.etherType : exact; } actions = { a; } default_action = a; } apply { t.apply(); }`), "bound arguments"},
		{prelude + `program X : implements Bogus { parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } } control C(pkt p) { apply {} } }`, "unknown interface"},
		{prelude + `program X : implements Unicast { parser P(extractor ex, pkt p, out hdr_t h) { state start { transition weird; } } control C(pkt p) { apply {} } }`, "unknown state"},
		{progWrap(`apply { ex.extract(p, h.eth); }`), "undefined: ex"},
		{prelude + `header odd_h { bit<3> x; }
program X : implements Unicast { parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } } control C(pkt p) { apply {} } }`, "whole number of bytes"},
	}
	for _, c := range cases {
		checkErr(t, c.src, c.want)
	}
}

func TestExtractOnlyInParser(t *testing.T) {
	checkErr(t, prelude+`
program X : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } }
  control C(extractor ex, pkt p, inout hdr_t h, im_t im) { apply { ex.extract(p, h.eth); } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}`, "only allowed in parsers")
}

func TestConstEval(t *testing.T) {
	env := mustCheck(t, `
const bit<16> ETH_IPV4 = 0x0800;
const bit<16> DOUBLED = ETH_IPV4 * 2;
const bit<8> MASKED = 0xFF & 0x0F;
program X : implements Unicast {
  parser P(extractor ex, pkt p) { state start { transition accept; } }
  control C(pkt p, im_t im) { apply { } }
  control D(emitter em, pkt p) { apply { } }
}`)
	if c := env.Consts["DOUBLED"]; c.Value != 0x1000 {
		t.Errorf("DOUBLED = %#x, want 0x1000", c.Value)
	}
	if c := env.Consts["MASKED"]; c.Value != 0x0F {
		t.Errorf("MASKED = %#x, want 0x0F", c.Value)
	}
	if c := env.Consts["IN_PORT"]; c.Width != 32 {
		t.Errorf("builtin IN_PORT missing: %+v", c)
	}
}

func TestStackTyping(t *testing.T) {
	env := mustCheck(t, `
header label_h { bit<20> label; bit<3> tc; bit<1> s; bit<8> ttl; }
struct hdr_t { label_h[4] labels; }
program X : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start {
      ex.extract(p, h.labels.next);
      transition select(h.labels.last.s) { 1 : accept; default : start; };
    }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    apply {
      h.labels[0].ttl = h.labels[0].ttl - 1;
      h.labels.pop_front(1);
      if (h.labels[1].isValid()) { h.labels[1].setInvalid(); }
    }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.labels); } }
}`)
	if env.Headers["label_h"].ByteSize() != 4 {
		t.Errorf("label_h size = %d, want 4", env.Headers["label_h"].ByteSize())
	}
	checkErr(t, `
header label_h { bit<20> label; bit<3> tc; bit<1> s; bit<8> ttl; }
struct hdr_t { label_h[2] labels; }
program X : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } }
  control C(pkt p, inout hdr_t h, im_t im) { apply { h.labels[5].ttl = 0; } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}`, "out of range")
}

func TestVarbitHeader(t *testing.T) {
	env := mustCheck(t, `
header opt_h { bit<8> kind; bit<8> len; varbit<320> data; }
program X : implements Unicast {
  parser P(extractor ex, pkt p, out opt_h o) {
    state start { ex.extract(p, o, (bit<32>)o.len); transition accept; }
  }
  control C(pkt p, inout opt_h o, im_t im) { apply { } }
  control D(emitter em, pkt p, in opt_h o) { apply { em.emit(p, o); } }
}`)
	h := env.Headers["opt_h"]
	if !h.HasVarbit || h.BitWidth != 336 {
		t.Errorf("opt_h = %+v, want varbit total 336", h)
	}
	checkErr(t, `header two_h { varbit<16> a; varbit<16> b; }
program X : implements Unicast { parser P(extractor ex, pkt p) { state start { transition accept; } } control C(pkt p) { apply {} } }`,
		"more than one varbit")
}
