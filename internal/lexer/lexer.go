// Package lexer tokenizes µP4 source text.
package lexer

import (
	"fmt"
	"strings"

	"microp4/internal/ast"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Number // integer literal, possibly width-annotated (8w0xFF)
	Punct  // operator or punctuation, Text holds the exact spelling
	Keyword
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "identifier"
	case Number:
		return "number"
	case Punct:
		return "punctuation"
	case Keyword:
		return "keyword"
	}
	return "unknown"
}

// Token is a lexical token.
type Token struct {
	Kind  Kind
	Text  string
	Width int    // for Number: annotated width, 0 if none
	Value uint64 // for Number: parsed value
	Pos   ast.Pos
}

func (t Token) String() string {
	if t.Kind == EOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Keywords of the µP4 dialect.
var keywords = map[string]bool{
	"header": true, "struct": true, "typedef": true, "const": true,
	"parser": true, "control": true, "state": true, "transition": true,
	"select": true, "action": true, "table": true, "key": true,
	"actions": true, "entries": true, "default_action": true, "size": true,
	"apply": true, "if": true, "else": true, "switch": true, "default": true,
	"program": true, "implements": true, "in": true, "out": true,
	"inout": true, "bit": true, "bool": true, "varbit": true,
	"true": true, "false": true, "exit": true, "return": true,
}

// IsKeyword reports whether s is a reserved word.
func IsKeyword(s string) bool { return keywords[s] }

// Error is a lexical error with position information.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans µP4 source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the entire input, returning all tokens excluding EOF.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (l *Lexer) pos() ast.Pos { return ast.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekByteAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByteAt(1) == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByteAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peekByte() == '*' && l.peekByteAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Pos: start, Msg: "unterminated block comment"}
			}
		case c == '#':
			// Preprocessor-style lines are not part of µP4 (§1 criticizes
			// them); skip them permissively so pasted P4 headers still lex.
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// multi-byte punctuation, longest first.
var puncts = []string{
	"&&&", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++",
	"(", ")", "{", "}", "[", "]", "<", ">", ";", ":", ",", ".", "=",
	"!", "~", "&", "|", "^", "+", "-", "*", "/", "%", "_", "@",
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: p}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if text == "_" {
			return Token{Kind: Punct, Text: "_", Pos: p}, nil
		}
		if IsKeyword(text) {
			return Token{Kind: Keyword, Text: text, Pos: p}, nil
		}
		return Token{Kind: Ident, Text: text, Pos: p}, nil
	case isDigit(c):
		return l.scanNumber(p)
	default:
		for _, pc := range puncts {
			if strings.HasPrefix(l.src[l.off:], pc) {
				for range pc {
					l.advance()
				}
				return Token{Kind: Punct, Text: pc, Pos: p}, nil
			}
		}
		return Token{}, &Error{Pos: p, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
}

// scanNumber scans decimal, hex (0x...), binary (0b...), and
// width-annotated (16w0x0800, 8s5) integer literals.
func (l *Lexer) scanNumber(p ast.Pos) (Token, error) {
	start := l.off
	for l.off < len(l.src) && (isDigit(l.peekByte()) || l.peekByte() == '_') {
		l.advance()
	}
	lead := l.src[start:l.off]
	// Width annotation: 16w0x0800 or 8s5 (signed treated as unsigned).
	if l.off < len(l.src) && (l.peekByte() == 'w' || l.peekByte() == 's') {
		n, err := parseUint(strings.ReplaceAll(lead, "_", ""), 10, p)
		if err != nil {
			return Token{}, err
		}
		if n == 0 || n > 64 {
			return Token{}, &Error{Pos: p, Msg: fmt.Sprintf("unsupported literal width %d", n)}
		}
		l.advance() // w or s
		v, text, err := l.scanMagnitude(p)
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: Number, Text: text, Width: int(n), Value: v, Pos: p}, nil
	}
	// Unannotated: lead may be "0" of a 0x/0b prefix.
	if lead == "0" && l.off < len(l.src) {
		switch l.peekByte() {
		case 'x', 'X', 'b', 'B':
			l.off = start
			l.col -= len(lead)
			v, text, err := l.scanMagnitude(p)
			if err != nil {
				return Token{}, err
			}
			return Token{Kind: Number, Text: text, Value: v, Pos: p}, nil
		}
	}
	text := strings.ReplaceAll(lead, "_", "")
	v, err := parseUint(text, 10, p)
	if err != nil {
		return Token{}, err
	}
	return Token{Kind: Number, Text: text, Value: v, Pos: p}, nil
}

// scanMagnitude scans a number magnitude at the cursor: 0x..., 0b..., or
// decimal digits, with optional underscore separators.
func (l *Lexer) scanMagnitude(p ast.Pos) (uint64, string, error) {
	base := uint64(10)
	if l.peekByte() == '0' {
		switch l.peekByteAt(1) {
		case 'x', 'X':
			l.advance()
			l.advance()
			base = 16
		case 'b', 'B':
			l.advance()
			l.advance()
			base = 2
		}
	}
	start := l.off
	for l.off < len(l.src) {
		c := l.peekByte()
		if c == '_' || isDigit(c) || (base == 16 && isHexDigit(c)) {
			l.advance()
			continue
		}
		break
	}
	text := strings.ReplaceAll(l.src[start:l.off], "_", "")
	if text == "" {
		return 0, "", &Error{Pos: p, Msg: "malformed numeric literal"}
	}
	v, err := parseUint(text, base, p)
	if err != nil {
		return 0, "", err
	}
	return v, text, nil
}

func parseUint(s string, base uint64, p ast.Pos) (uint64, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		var d uint64
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, &Error{Pos: p, Msg: fmt.Sprintf("bad digit %q in literal", c)}
		}
		if d >= base {
			return 0, &Error{Pos: p, Msg: fmt.Sprintf("digit %q out of range for base %d", c, base)}
		}
		nv := v*base + d
		if nv < v {
			return 0, &Error{Pos: p, Msg: "integer literal overflows 64 bits"}
		}
		v = nv
	}
	return v, nil
}
