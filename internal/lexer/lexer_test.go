package lexer

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	return toks
}

func TestKeywordsAndIdents(t *testing.T) {
	toks := kinds(t, "parser P(extractor ex, pkt p) { }")
	want := []struct {
		k Kind
		s string
	}{
		{Keyword, "parser"}, {Ident, "P"}, {Punct, "("}, {Ident, "extractor"},
		{Ident, "ex"}, {Punct, ","}, {Ident, "pkt"}, {Ident, "p"},
		{Punct, ")"}, {Punct, "{"}, {Punct, "}"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.k || toks[i].Text != w.s {
			t.Errorf("token %d = (%v,%q), want (%v,%q)", i, toks[i].Kind, toks[i].Text, w.k, w.s)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src   string
		width int
		value uint64
	}{
		{"0", 0, 0},
		{"42", 0, 42},
		{"0x0800", 0, 0x0800},
		{"0X86DD", 0, 0x86DD},
		{"0b1010", 0, 10},
		{"16w0x0800", 16, 0x0800},
		{"8w255", 8, 255},
		{"48w0xFFFFFFFFFFFF", 48, 0xFFFFFFFFFFFF},
		{"9s12", 9, 12},
		{"1_000", 0, 1000},
		{"16w0b1111_0000", 16, 0xF0},
	}
	for _, c := range cases {
		toks := kinds(t, c.src)
		if len(toks) != 1 {
			t.Fatalf("%q: got %d tokens %v", c.src, len(toks), toks)
		}
		tok := toks[0]
		if tok.Kind != Number || tok.Width != c.width || tok.Value != c.value {
			t.Errorf("%q = (%v, w=%d, v=%d), want (Number, w=%d, v=%d)",
				c.src, tok.Kind, tok.Width, tok.Value, c.width, c.value)
		}
	}
}

func TestPunctuationMaximalMunch(t *testing.T) {
	toks := kinds(t, "a &&& b << c <= d ++ e == f != g && h")
	var ops []string
	for _, tok := range toks {
		if tok.Kind == Punct {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"&&&", "<<", "<=", "++", "==", "!=", "&&"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	toks := kinds(t, "a // line comment\n/* block\ncomment */ b # pragma\nc")
	if len(toks) != 3 {
		t.Fatalf("got %d tokens %v, want 3", len(toks), toks)
	}
	for i, name := range []string{"a", "b", "c"} {
		if toks[i].Text != name {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, name)
		}
	}
}

func TestPositions(t *testing.T) {
	toks := kinds(t, "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{"/* unterminated", "$", "99w1", "0w1", "0x"}
	for _, src := range bad {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", src)
		}
	}
}

func TestUnderscoreIsDontCare(t *testing.T) {
	toks := kinds(t, "(_, 0x6)")
	if toks[1].Kind != Punct || toks[1].Text != "_" {
		t.Errorf("got %v %q, want punct _", toks[1].Kind, toks[1].Text)
	}
}

// Property: any sequence of valid identifiers separated by spaces lexes to
// exactly that many Ident/Keyword tokens with the same spellings.
func TestQuickIdentRoundTrip(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
	f := func(raw []uint16, sizes []uint8) bool {
		var names []string
		i := 0
		for _, s := range sizes {
			n := int(s)%8 + 1
			var b strings.Builder
			for j := 0; j < n; j++ {
				if i >= len(raw) {
					break
				}
				b.WriteByte(letters[int(raw[i])%len(letters)])
				i++
			}
			if b.Len() > 0 {
				names = append(names, b.String())
			}
		}
		src := strings.Join(names, " ")
		toks, err := Tokenize(src)
		if err != nil {
			return false
		}
		if len(toks) != len(names) {
			return false
		}
		for k, tok := range toks {
			if tok.Text != names[k] {
				return false
			}
			if tok.Kind != Ident && tok.Kind != Keyword && tok.Text != "_" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decimal literals round-trip through the lexer.
func TestQuickDecimalRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		src := strings.TrimLeft(strings.Repeat("0", 0), "") + itoa(uint64(v))
		toks, err := Tokenize(src)
		return err == nil && len(toks) == 1 && toks[0].Value == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
