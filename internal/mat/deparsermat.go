package mat

import (
	"fmt"

	"microp4/internal/analysis"
	"microp4/internal/ir"
)

// buildDeparserMAT synthesizes the match-action table that replaces an
// instance's deparser (paper §5.3): entries copy user-defined headers
// back into the byte-stack at the appropriate offsets, shifting trailing
// data when the packet grew or shrank. Returns "" when the instance needs
// no deparser table (nothing parsed, nothing emitted).
func (c *composer) buildDeparserMAT(inst string, pf *ir.Program, ctxs []ctx, paths []*analysis.ParserPath, ids [][]uint64, elim *elimInfo) (string, map[string]bool, error) {
	depReads := make(map[string]bool)
	emits, err := flattenEmits(pf.Deparser)
	if err != nil {
		return "", nil, fmt.Errorf("%s: %v", pf.Name, err)
	}
	anyParsed := false
	for _, p := range paths {
		if p.Bytes > 0 {
			anyParsed = true
		}
	}
	if len(emits) == 0 && !anyParsed {
		return "", depReads, nil
	}

	// Headers whose validity can change at runtime: targets of
	// setValid/setInvalid anywhere in the control (incl. actions).
	touched := make(map[string]bool)
	markTouched := func(s *ir.Stmt) {
		if s.Kind == ir.SSetValid || s.Kind == ir.SSetInvalid {
			touched[s.Hdr] = true
		}
	}
	ir.WalkStmts(pf.Apply, markTouched)
	for _, a := range pf.Actions {
		ir.WalkStmts(a.Body, markTouched)
	}

	pp := ppVar(inst)
	tblName := instPrefix(inst, "$deparser_tbl")
	cols := newColSet()
	var parentCol *keyCol
	if ctxs[0].parentVar != "" {
		k := keyCol{kind: "ref", ref: ctxs[0].parentVar, w: PathVarWidth}
		cols.add(k)
		parentCol = &k
	}
	ownCol := keyCol{kind: "ref", ref: pp, w: PathVarWidth}
	cols.add(ownCol)

	type pendingEntry struct {
		kvs    []entryKV
		action string
	}
	var pending []pendingEntry
	allEmpty := true

	for ci, cx := range ctxs {
		for pi, path := range paths {
			if path.Rejected {
				continue
			}
			extracted := make(map[string]bool)
			for _, ex := range path.Extracts {
				extracted[ex.Hdr] = true
			}
			// Partition emitted headers into certain/uncertain validity.
			var uncertain []string
			certainValid := make(map[string]bool)
			for _, h := range emits {
				switch {
				case touched[h]:
					uncertain = append(uncertain, h)
				case extracted[h]:
					certainValid[h] = true
				}
			}
			if len(uncertain) > 16 {
				return "", nil, fmt.Errorf("%s: %d uncertain headers in deparser (cap 16)", tblName, len(uncertain))
			}
			combos := 1 << len(uncertain)
			if len(pending)+combos > c.maxEntries {
				return "", nil, fmt.Errorf("%s: deparser MAT exceeds %d entries", tblName, c.maxEntries)
			}
			for combo := 0; combo < combos; combo++ {
				valid := make(map[string]bool, len(emits))
				for h := range certainValid {
					valid[h] = true
				}
				var kvs []entryKV
				if parentCol != nil {
					kvs = append(kvs, entryKV{col: *parentCol, value: cx.parentVal})
				}
				kvs = append(kvs, entryKV{col: ownCol, value: ids[ci][pi]})
				for bi, h := range uncertain {
					v := combo>>uint(bi)&1 == 1
					valid[h] = v
					col := keyCol{kind: "isvalid", ref: h, w: 1}
					cols.add(col)
					var val uint64
					if v {
						val = 1
					}
					kvs = append(kvs, entryKV{col: col, value: val})
				}
				act, empty, err := c.deparsePathAction(inst, cx, path, emits, valid, ci, pi, combo, elim, depReads)
				if err != nil {
					return "", nil, err
				}
				allEmpty = allEmpty && empty
				pending = append(pending, pendingEntry{kvs: kvs, action: act})
			}
		}
	}

	ordered := cols.sorted()
	tbl := &ir.Table{Name: tblName, Synthetic: true}
	for _, col := range ordered {
		mk := "ternary"
		if col.kind == "ref" && col.w == PathVarWidth {
			mk = "exact"
		}
		// isvalid columns stay ternary so absent combinations can
		// don't-care them.
		if col.kind == "isvalid" {
			mk = "ternary"
		}
		tbl.Keys = append(tbl.Keys, ir.Key{Expr: col.expr(), MatchKind: mk})
	}
	for _, pe := range pending {
		ent := ir.Entry{Action: ir.ActionCall{Name: pe.action}}
		byCol := make(map[keyCol]entryKV, len(pe.kvs))
		for _, kv := range pe.kvs {
			byCol[kv.col] = kv
		}
		for _, col := range ordered {
			kv, ok := byCol[col]
			if !ok {
				ent.Keys = append(ent.Keys, ir.EntryKey{DontCare: true})
				continue
			}
			ent.Keys = append(ent.Keys, ir.EntryKey{Value: kv.value, Mask: kv.mask, HasMask: kv.hasMask})
		}
		tbl.Entries = append(tbl.Entries, ent)
		if !contains(tbl.Actions, pe.action) {
			tbl.Actions = append(tbl.Actions, pe.action)
		}
	}
	// §8.1: when every write-back was eliminated (the module cannot have
	// changed the wire bytes and sizes never change), the whole deparser
	// MAT disappears.
	if allEmpty {
		for _, pe := range pending {
			delete(c.out.Actions, pe.action)
		}
		return "", depReads, nil
	}
	noop := instPrefix(inst, "$deparse_noop")
	c.out.Actions[noop] = &ir.Action{Name: noop}
	tbl.Actions = append(tbl.Actions, noop)
	tbl.Default = &ir.ActionCall{Name: noop}
	c.out.Tables[tblName] = tbl
	return tblName, depReads, nil
}

// deparsePathAction synthesizes the write-back action for one
// (context, path, validity-combination): shift trailing bytes when the
// emitted size differs from the parsed size, then copy each valid
// header's fields into the byte-stack in emit order.
func (c *composer) deparsePathAction(inst string, cx ctx, path *analysis.ParserPath, emits []string, valid map[string]bool, ci, pi, combo int, elim *elimInfo, depReads map[string]bool) (name string, empty bool, err error) {
	parsed := path.Bytes
	// Where each header was parsed from on this path (absolute bytes).
	parseOff := make(map[string]int, len(path.Extracts))
	for _, ex := range path.Extracts {
		parseOff[ex.Hdr] = cx.base + ex.ByteOff
	}
	emitted := 0
	for _, h := range emits {
		if valid[h] {
			ht := c.out.Headers[c.declType(h)]
			if ht == nil {
				return "", false, fmt.Errorf("emit of unknown header %s", h)
			}
			emitted += ht.ByteSize()
		}
	}
	var body []*ir.Stmt
	if emitted != parsed {
		body = append(body, &ir.Stmt{Kind: ir.SShift, Off: cx.base + parsed, Amt: emitted - parsed})
	}
	off := cx.base
	for _, h := range emits {
		if !valid[h] {
			continue
		}
		ht := c.out.Headers[c.declType(h)]
		// §8.1: an unmodified header re-emitted at the offset it was
		// parsed from is already on the byte-stack.
		if po, wasParsed := parseOff[h]; wasParsed && po == off && elim.skipWriteBack(h) {
			off += ht.ByteSize()
			continue
		}
		for _, f := range ht.Fields {
			depReads[h+"."+f.Name] = true
			body = append(body, &ir.Stmt{
				Kind: ir.SAssign,
				LHS:  &ir.Expr{Kind: ir.EBSlice, Off: off*8 + f.Offset, Width: f.Width},
				RHS:  ir.Ref(h+"."+f.Name, f.Width),
			})
		}
		off += ht.ByteSize()
	}
	name = fmt.Sprintf("%s$deparse_c%d_p%d_v%d", sanitize(inst), ci, pi, combo)
	c.out.Actions[name] = &ir.Action{Name: name, Body: body}
	return name, len(body) == 0, nil
}

func (c *composer) declType(hdrPath string) string {
	d := c.out.DeclByPath(hdrPath)
	if d == nil {
		return ""
	}
	return d.TypeName
}

// flattenEmits extracts the deparser's emit order. Emits guarded by an
// isValid check on the emitted header itself are flattened (emit of an
// invalid header is a no-op anyway); any other control flow in a
// deparser is rejected.
func flattenEmits(dep []*ir.Stmt) ([]string, error) {
	var out []string
	var walk func(ss []*ir.Stmt) error
	walk = func(ss []*ir.Stmt) error {
		for _, s := range ss {
			switch s.Kind {
			case ir.SEmit:
				out = append(out, s.Hdr)
			case ir.SIf:
				if s.Cond.Kind != ir.EIsValid || len(s.Else) > 0 {
					return fmt.Errorf("deparsers may only guard emits with isValid checks")
				}
				if err := walk(s.Then); err != nil {
					return err
				}
			default:
				return fmt.Errorf("unsupported statement %s in deparser", s.Kind)
			}
		}
		return nil
	}
	if err := walk(dep); err != nil {
		return nil, err
	}
	return out, nil
}
