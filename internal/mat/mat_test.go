package mat_test

import (
	"fmt"
	"testing"

	"microp4/internal/frontend"
	"microp4/internal/ir"
	"microp4/internal/mat"
	"microp4/internal/midend"
)

// fig10Src is the parser of Fig. 10a: eth(14) then IPv6(40) or IPv4(20),
// then TCP(20), with the forward-substitution example (var_y is assigned
// meta.data1 on one path and meta.data2 on the other).
const fig10Src = `
struct meta_t { bit<8> data1; bit<8> data2; }
header eth_h  { bit<48> dst; bit<48> src; bit<16> ethType; }
header ipv6_h { bit<4> version; bit<8> tclass; bit<20> flowlabel; bit<16> plen;
                bit<8> nexthdr; bit<8> hoplimit; bit<64> srcHi; bit<64> srcLo;
                bit<64> dstHi; bit<64> dstLo; }
header ipv4_h { bit<4> version; bit<4> ihl; bit<8> tos; bit<16> totalLen;
                bit<16> id; bit<3> flags; bit<13> frag; bit<8> ttl;
                bit<8> protocol; bit<16> csum; bit<32> src; bit<32> dst; }
header tcp_h  { bit<16> sport; bit<16> dport; bit<32> seq; bit<32> ack;
                bit<4> dataOff; bit<4> res; bit<8> flags; bit<16> window;
                bit<16> csum; bit<16> urgent; }
struct hdr_t { eth_h eth; ipv6_h ipv6; ipv4_h ipv4; tcp_h tcp; }

program Fig10 : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout meta_t m, im_t im) {
    bit<8> var_y;
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.ethType) {
        0x86DD: parse_ipv6;
        0x0800: parse_ipv4;
      };
    }
    state parse_ipv6 {
      ex.extract(p, h.ipv6);
      var_y = m.data1;
      transition select(h.ipv6.nexthdr) { 0x6: parse_tcp; };
    }
    state parse_ipv4 {
      ex.extract(p, h.ipv4);
      var_y = m.data2;
      transition select(h.ipv4.protocol) { 0x6: parse_tcp; };
    }
    state parse_tcp {
      ex.extract(p, h.tcp);
      transition select(var_y) { 0xFF: accept; };
    }
  }
  control C(pkt p, inout hdr_t h, inout meta_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.ipv6); em.emit(p, h.ipv4); em.emit(p, h.tcp); }
  }
}
`

func buildPipeline(t *testing.T, mainSrc string, modSrcs ...string) *mat.Pipeline {
	t.Helper()
	mainP, err := frontend.CompileModule("main.up4", mainSrc)
	if err != nil {
		t.Fatalf("compile main: %v", err)
	}
	var mods []*ir.Program
	for i, src := range modSrcs {
		m, err := frontend.CompileModule(fmt.Sprintf("mod%d.up4", i), src)
		if err != nil {
			t.Fatalf("compile module %d: %v", i, err)
		}
		mods = append(mods, m)
	}
	res, err := midend.Build(mainP, mods...)
	if err != nil {
		t.Fatalf("midend build: %v", err)
	}
	return res.Pipeline
}

// TestFigure10Parser checks the parser→MAT transformation against the
// worked example of Fig. 10: two paths (54- and 74-byte), a merged key of
// byte-stack offsets plus metadata plus validity, one entry per path.
func TestFigure10Parser(t *testing.T) {
	pl := buildPipeline(t, fig10Src)
	tbl := pl.Tables["$parser_tbl"]
	if tbl == nil {
		t.Fatalf("no parser MAT; tables = %v", tableNames(pl))
	}
	if !tbl.Synthetic {
		t.Error("parser MAT not marked synthetic")
	}
	if len(tbl.Entries) != 4 {
		t.Fatalf("parser MAT has %d entries, want 4 (one per path plus a truncation guard each)", len(tbl.Entries))
	}
	if tbl.Entries[1].Action.Name != "$parse_error" || tbl.Entries[3].Action.Name != "$parse_error" {
		t.Errorf("entries 1/3 should be truncation guards: %s / %s",
			tbl.Entries[1].Action.Name, tbl.Entries[3].Action.Name)
	}
	// Collect key columns.
	type colsig struct {
		kind string
		ref  string
		off  int
	}
	var sigs []colsig
	for _, k := range tbl.Keys {
		switch k.Expr.Kind {
		case ir.ERef:
			sigs = append(sigs, colsig{"ref", k.Expr.Ref, 0})
		case ir.EBSlice:
			sigs = append(sigs, colsig{"bslice", "", k.Expr.Off})
		case ir.EBValid:
			sigs = append(sigs, colsig{"bvalid", "", k.Expr.Off})
		}
	}
	want := []colsig{
		{"ref", "$meta.data1", 0}, // var_y on the IPv6 path
		{"ref", "$meta.data2", 0}, // var_y on the IPv4 path
		{"bslice", "", 96},        // eth.ethType: bytes 12-13
		{"bslice", "", 160},       // ipv6.nexthdr: byte 20
		{"bslice", "", 184},       // ipv4.protocol: byte 23
		{"bvalid", "", 53},        // 54-byte path validity
		{"bvalid", "", 73},        // 74-byte path validity
	}
	if len(sigs) != len(want) {
		t.Fatalf("key columns = %+v, want %+v", sigs, want)
	}
	for i := range want {
		if sigs[i] != want[i] {
			t.Errorf("key %d = %+v, want %+v", i, sigs[i], want[i])
		}
	}
	// Entry 0 is the IPv6 path (case order): ethType 0x86DD, nexthdr 6,
	// data1 = 0xFF, validity at byte 73; data2 and byte-23 don't-care.
	e0 := tbl.Entries[0]
	if e0.Keys[0].DontCare || e0.Keys[0].Value != 0xFF {
		t.Errorf("entry 0 data1 = %+v, want 0xFF", e0.Keys[0])
	}
	if !e0.Keys[1].DontCare {
		t.Errorf("entry 0 data2 should be don't-care: %+v", e0.Keys[1])
	}
	if e0.Keys[2].Value != 0x86DD {
		t.Errorf("entry 0 ethType = %#x, want 0x86DD", e0.Keys[2].Value)
	}
	if e0.Keys[3].Value != 6 || !e0.Keys[4].DontCare {
		t.Errorf("entry 0 nexthdr/protocol = %+v %+v", e0.Keys[3], e0.Keys[4])
	}
	if !e0.Keys[5].DontCare || e0.Keys[6].Value != 1 {
		t.Errorf("entry 0 validity = %+v %+v, want don't-care then 1", e0.Keys[5], e0.Keys[6])
	}
	// Entry 2 is the IPv4 path.
	e1 := tbl.Entries[2]
	if e1.Keys[2].Value != 0x0800 || !e1.Keys[3].DontCare || e1.Keys[4].Value != 6 {
		t.Errorf("entry 1 = %+v", e1.Keys)
	}
	if e1.Keys[5].Value != 1 || !e1.Keys[6].DontCare {
		t.Errorf("entry 1 validity = %+v %+v", e1.Keys[5], e1.Keys[6])
	}
	// Default action is the parse error.
	if tbl.Default == nil || tbl.Default.Name != "$parse_error" {
		t.Errorf("default = %+v, want $parse_error", tbl.Default)
	}
	// Byte-stack: 74 bytes (no growth).
	if pl.BsBytes != 74 {
		t.Errorf("BsBytes = %d, want 74", pl.BsBytes)
	}
	if pl.MinPkt != 54 {
		t.Errorf("MinPkt = %d, want 54", pl.MinPkt)
	}
}

func tableNames(pl *mat.Pipeline) []string {
	var out []string
	for n := range pl.Tables {
		out = append(out, n)
	}
	return out
}

// guardedDeparserSrc emits a header under its own isValid guard — the
// only conditional the homogenizer accepts in deparsers.
const guardedDeparserSrc = `
struct empty_t { }
header a_h { bit<16> x; }
header b_h { bit<32> y; }
struct ghdr_t { a_h a; b_h b; }
program Guarded : implements Unicast {
  parser P(extractor ex, pkt p, out ghdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.a);
      transition select(h.a.x) { 1: parse_b; default: accept; };
    }
    state parse_b { ex.extract(p, h.b); transition accept; }
  }
  control C(pkt p, inout ghdr_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in ghdr_t h) {
    apply {
      em.emit(p, h.a);
      if (h.b.isValid()) {
        em.emit(p, h.b);
      }
    }
  }
}
Guarded(P, C, D) main;
`

func TestGuardedDeparserEmits(t *testing.T) {
	pl := buildPipeline(t, guardedDeparserSrc)
	dep := pl.Tables["$deparser_tbl"]
	if dep == nil {
		t.Fatal("deparser MAT missing")
	}
	// Two parser paths, headers' validity is certain per path → one
	// entry per path.
	if len(dep.Entries) != 2 {
		t.Errorf("deparser entries = %d, want 2", len(dep.Entries))
	}
}

func TestDeparserRejectsComplexControl(t *testing.T) {
	src := `
struct empty_t { }
header a_h { bit<16> x; }
struct hdr_t { a_h a; }
program Bad : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.a); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) {
    apply {
      if (h.a.x == 0) {
        em.emit(p, h.a);
      }
    }
  }
}
Bad(P, C, D) main;
`
	mainP, err := frontend.CompileModule("bad.up4", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := midend.Build(mainP); err == nil {
		t.Error("deparser with a non-isValid conditional accepted")
	}
}

// TestDuplicateInstanceApplyRejected pins the documented restriction:
// one module instance may be applied only once.
func TestDuplicateInstanceApplyRejected(t *testing.T) {
	src := `
struct empty_t { }
struct hdr_t { }
struct chdr_t { }
Sub(pkt p, im_t im);
program Twice : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) { state start { transition accept; } }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    Sub() s_i;
    apply {
      s_i.apply(p, im);
      s_i.apply(p, im);
    }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
`
	sub := `
struct empty_t { }
struct shdr_t { }
program Sub : implements Unicast {
  parser P(extractor ex, pkt p, out shdr_t h, inout empty_t m, im_t im) { state start { transition accept; } }
  control C(pkt p, inout shdr_t h, inout empty_t m, im_t im) {
    action a() { }
    table t { key = { } actions = { a; } default_action = a; }
    apply { t.apply(); }
  }
  control D(emitter em, pkt p, in shdr_t h) { apply { } }
}
`
	mainP, err := frontend.CompileModule("twice.up4", src)
	if err != nil {
		t.Fatal(err)
	}
	subP, err := frontend.CompileModule("sub.up4", sub)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := midend.Build(mainP, subP); err == nil {
		t.Error("double apply of one instance accepted")
	}
}
