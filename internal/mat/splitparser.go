package mat

import (
	"fmt"

	"microp4/internal/analysis"
	"microp4/internal/ir"
	"microp4/internal/types"
)

// buildParserMATSplit synthesizes the §8.1 alternative parser encoding:
// "instead of generating a single MAT for a (de)parser, µP4C can
// generate multiple MATs to split (de)parsing". One MAT per parse depth
// walks a prefix trie over (caller context × parser path): each table
// matches the path-id-so-far plus that hop's select fields, extracts the
// hop's headers at the statically known offset for that prefix, and
// advances the path id. Leaves reuse the same path ids as the monolithic
// encoding, so the guard, control, and deparser MAT are unchanged.
//
// Compared to the single-MAT encoding this trades fewer, narrower
// entries per table for a chain of tables with strict dependencies —
// exactly the tradeoff §8.1 describes ("enables the target compiler to
// perform fine-grained optimization and placement").
func (c *composer) buildParserMATSplit(inst string, pf *ir.Program, ctxs []ctx, paths []*analysis.ParserPath, ids [][]uint64, elim *elimInfo) ([]string, error) {
	pp := ppVar(inst)
	errAct := instPrefix(inst, "$parse_error")
	c.out.Actions[errAct] = &ir.Action{
		Name: errAct,
		Body: []*ir.Stmt{
			{Kind: ir.SAssign, LHS: ir.Ref(pp, PathVarWidth), RHS: ir.Const(NoMatch, PathVarWidth)},
			{Kind: ir.SAssign, LHS: ir.Ref("$im.out_port", 9), RHS: ir.Const(types.DropPort, 9)},
			{Kind: ir.SAssign, LHS: ir.Ref("$im.$perr", 1), RHS: ir.Const(1, 1)},
		},
	}

	// trie node: one (context, step-prefix) with its environment.
	type node struct {
		id     uint64 // path id after reaching this node
		off    int    // absolute byte offset after its extracts
		env    *pathEnv
		depth  int
		parent *node
	}
	fresh := func() (uint64, error) {
		c.ppSeq++
		if c.ppSeq >= NoMatch {
			return 0, fmt.Errorf("path-id space exhausted")
		}
		return c.ppSeq, nil
	}

	// Per-depth pending entries and actions.
	type entry struct {
		kvs    []entryKV
		action string
	}
	var depths [][]entry
	addEntry := func(d int, e entry) {
		for len(depths) <= d {
			depths = append(depths, nil)
		}
		depths[d] = append(depths[d], e)
	}
	actSeq := 0

	// keepAlive records accepting leaves finished before the last depth;
	// deeper tables need pass-through entries for them.
	var keepAlive []struct {
		depth int
		id    uint64
	}

	// Walk each (ctx, path), sharing trie nodes per prefix.
	type key struct {
		ci     int
		prefix string
	}
	nodes := make(map[key]*node)

	maxDepth := 0
	for ci, cx := range ctxs {
		for pi, path := range paths {
			prefix := ""
			var parent *node
			for d, step := range path.Steps {
				prefix += "/" + step.State
				k := key{ci, prefix}
				n, seen := nodes[k]
				if !seen {
					// Create the node: its id, environment, offsets.
					var env *pathEnv
					off := cx.base
					if parent != nil {
						// Copy the parent env (cheap: maps shared via fresh copy).
						env = newPathEnv(pf)
						for kk, vv := range parent.env.defs {
							env.defs[kk] = vv
						}
						for kk, vv := range parent.env.hdrOff {
							env.hdrOff[kk] = vv
						}
						off = parent.off
					} else {
						env = newPathEnv(pf)
					}
					id, err := fresh()
					if err != nil {
						return nil, err
					}
					n = &node{id: id, env: env, off: off, depth: d, parent: parent}
					nodes[k] = n

					// Build this hop's action: record id, run the step's
					// statements with extracts expanded.
					body := []*ir.Stmt{{
						Kind: ir.SAssign, LHS: ir.Ref(pp, PathVarWidth), RHS: ir.Const(id, PathVarWidth),
					}}
					startOff := n.off
					for _, s := range step.Stmts {
						switch s.Kind {
						case ir.SExtract:
							if s.VarSize != nil {
								return nil, fmt.Errorf("%s: varbit extract survived the midend", pf.Name)
							}
							ht, err := c.headerTypeOf(pf, s.Hdr)
							if err != nil {
								return nil, err
							}
							n.env.recordExtract(s.Hdr, n.off)
							body = append(body, &ir.Stmt{Kind: ir.SSetValid, Hdr: s.Hdr})
							for _, f := range ht.Fields {
								if elim.skipParseCopy(s.Hdr, f.Name) {
									continue
								}
								body = append(body, &ir.Stmt{
									Kind: ir.SAssign,
									LHS:  ir.Ref(s.Hdr+"."+f.Name, f.Width),
									RHS:  &ir.Expr{Kind: ir.EBSlice, Off: n.off*8 + f.Offset, Width: f.Width},
								})
							}
							n.off += ht.ByteSize()
						case ir.SAssign:
							n.env.recordAssign(s)
							body = append(body, s.Clone())
						default:
							body = append(body, s.Clone())
						}
					}
					actSeq++
					actName := fmt.Sprintf("%s$sparse_%d", sanitize(inst), actSeq)
					c.out.Actions[actName] = &ir.Action{Name: actName, Body: body}

					// Entry key: the predecessor id (parent node, or the
					// caller context at depth 0), this hop's constraints
					// (the select taken at the PARENT to reach this
					// state — for depth 0 there is none), plus validity
					// of this hop's bytes.
					var kvs []entryKV
					if parent != nil {
						kvs = append(kvs, entryKV{col: keyCol{kind: "ref", ref: pp, w: PathVarWidth}, value: parent.id})
					} else if cx.parentVar != "" {
						kvs = append(kvs, entryKV{col: keyCol{kind: "ref", ref: cx.parentVar, w: PathVarWidth}, value: cx.parentVal})
					}
					if parent != nil {
						// The constraint taken at the parent's select.
						cst := path.Steps[d-1].Constraint
						if cst != nil && !cst.Default {
							ckvs, sat, err := constraintKVs(parent.env, cst.Exprs, cst.Case)
							if err != nil {
								return nil, fmt.Errorf("%s: %v", pf.Name, err)
							}
							if !sat {
								// Unreachable hop: no entry; the node id
								// is never assigned at runtime.
								parent = n
								continue
							}
							kvs = append(kvs, ckvs...)
						}
					}
					if n.off > startOff {
						kvs = append(kvs, entryKV{col: keyCol{kind: "bvalid", off: n.off - 1, w: 1}, value: 1})
					}
					addEntry(d, entry{kvs: kvs, action: actName})
					if n.off > startOff {
						// Truncation guard: matching this hop's selects
						// with too few bytes must reject, not fall
						// through to a shorter sibling's entry.
						tkvs := append([]entryKV(nil), kvs...)
						tkvs[len(tkvs)-1].value = 0
						addEntry(d, entry{kvs: tkvs, action: errAct})
					}
				}
				parent = n
				if d > maxDepth {
					maxDepth = d
				}
			}
			// Finalize: one entry at depth len(Steps) keyed on the last
			// node's id plus its exit constraint, assigning the path's
			// final id (or the parse error for reject-terminated paths).
			if parent == nil {
				continue // pseudo path; handled by the caller's fallback
			}
			finDepth := len(path.Steps)
			var kvs []entryKV
			kvs = append(kvs, entryKV{col: keyCol{kind: "ref", ref: pp, w: PathVarWidth}, value: parent.id})
			finSat := true
			if cst := path.Steps[len(path.Steps)-1].Constraint; cst != nil && !cst.Default {
				ckvs, sat, err := constraintKVs(parent.env, cst.Exprs, cst.Case)
				if err != nil {
					return nil, fmt.Errorf("%s: %v", pf.Name, err)
				}
				finSat = sat
				kvs = append(kvs, ckvs...)
			}
			if !finSat {
				continue
			}
			if path.Rejected {
				addEntry(finDepth, entry{kvs: kvs, action: errAct})
			} else {
				actSeq++
				accName := fmt.Sprintf("%s$sparse_acc%d", sanitize(inst), actSeq)
				c.out.Actions[accName] = &ir.Action{Name: accName, Body: []*ir.Stmt{{
					Kind: ir.SAssign, LHS: ir.Ref(pp, PathVarWidth), RHS: ir.Const(ids[ci][pi], PathVarWidth),
				}}}
				addEntry(finDepth, entry{kvs: kvs, action: accName})
				keepAlive = append(keepAlive, struct {
					depth int
					id    uint64
				}{finDepth, ids[ci][pi]})
			}
			if finDepth > maxDepth {
				maxDepth = finDepth
			}
		}
	}

	// Pass-through entries: a packet accepted at depth j must sail
	// through tables j+1..maxDepth unchanged.
	noop := instPrefix(inst, "$sparse_keep")
	c.out.Actions[noop] = &ir.Action{Name: noop}
	for _, ka := range keepAlive {
		for d := ka.depth + 1; d <= maxDepth; d++ {
			addEntry(d, entry{
				kvs:    []entryKV{{col: keyCol{kind: "ref", ref: pp, w: PathVarWidth}, value: ka.id}},
				action: noop,
			})
		}
	}
	// Errors propagate too.
	for d := 1; d <= maxDepth; d++ {
		addEntry(d, entry{
			kvs:    []entryKV{{col: keyCol{kind: "ref", ref: pp, w: PathVarWidth}, value: NoMatch}},
			action: noop,
		})
	}

	// Materialize one table per depth.
	var tblNames []string
	for d, entries := range depths {
		cols := newColSet()
		for _, e := range entries {
			for _, kv := range e.kvs {
				cols.add(kv.col)
			}
		}
		ordered := cols.sorted()
		name := fmt.Sprintf("%s$%d", instPrefix(inst, "$parser_tbl"), d)
		tbl := &ir.Table{Name: name, Synthetic: true}
		for _, col := range ordered {
			mk := "ternary"
			if col.kind == "ref" && col.w == PathVarWidth {
				mk = "exact"
			}
			tbl.Keys = append(tbl.Keys, ir.Key{Expr: col.expr(), MatchKind: mk})
		}
		for _, e := range entries {
			ent := ir.Entry{Action: ir.ActionCall{Name: e.action}}
			byCol := make(map[keyCol]entryKV, len(e.kvs))
			for _, kv := range e.kvs {
				byCol[kv.col] = kv
			}
			for _, col := range ordered {
				kv, ok := byCol[col]
				if !ok {
					ent.Keys = append(ent.Keys, ir.EntryKey{DontCare: true})
					continue
				}
				ent.Keys = append(ent.Keys, ir.EntryKey{Value: kv.value, Mask: kv.mask, HasMask: kv.hasMask})
			}
			tbl.Entries = append(tbl.Entries, ent)
			if !contains(tbl.Actions, e.action) {
				tbl.Actions = append(tbl.Actions, e.action)
			}
		}
		if !contains(tbl.Actions, errAct) {
			tbl.Actions = append(tbl.Actions, errAct)
		}
		tbl.Default = &ir.ActionCall{Name: errAct}
		c.out.Tables[name] = tbl
		tblNames = append(tblNames, name)
	}
	if len(tblNames) == 0 {
		// Parserless module: a single trivial table records the path id.
		return nil, nil
	}
	return tblNames, nil
}
