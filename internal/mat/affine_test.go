package mat

import (
	"testing"
	"testing/quick"

	"microp4/internal/ir"
)

func bslice(off, w int) *ir.Expr { return &ir.Expr{Kind: ir.EBSlice, Off: off, Width: w} }

func TestAffineIdentity(t *testing.T) {
	col, inv, id, err := affineKey(bslice(96, 16))
	if err != nil || !id || col.Off != 96 {
		t.Fatalf("identity: %v %v %v", col, id, err)
	}
	if v, ok := inv(0x800); !ok || v != 0x800 {
		t.Errorf("identity invert = %d %v", v, ok)
	}
}

func TestAffineVarbitDispatch(t *testing.T) {
	// ((bit<32>)ihl - 5) * 32 where ihl is a 4-bit slice.
	e := &ir.Expr{Kind: ir.EBin, Op: "*", Width: 32,
		X: &ir.Expr{Kind: ir.EBin, Op: "-", Width: 32,
			X: &ir.Expr{Kind: ir.EUn, Op: "cast", Width: 32, X: bslice(116, 4)},
			Y: ir.Const(5, 32)},
		Y: ir.Const(32, 32)}
	col, inv, id, err := affineKey(e)
	if err != nil {
		t.Fatal(err)
	}
	if id || col.Off != 116 || col.Width != 4 {
		t.Fatalf("col = %v id=%v", col, id)
	}
	cases := map[uint64]struct {
		x  uint64
		ok bool
	}{
		0:   {5, true},
		32:  {6, true},
		320: {15, true},
		16:  {0, false}, // not divisible by 32
		352: {0, false}, // ihl would be 16: out of range
	}
	for v, want := range cases {
		x, ok := inv(v)
		if ok != want.ok || (ok && x != want.x) {
			t.Errorf("inv(%d) = (%d, %v), want (%d, %v)", v, x, ok, want.x, want.ok)
		}
	}
}

func TestAffineShiftAndAdd(t *testing.T) {
	// (x << 3) + 7 over an 8-bit column in a 16-bit expression.
	e := &ir.Expr{Kind: ir.EBin, Op: "+", Width: 16,
		X: &ir.Expr{Kind: ir.EBin, Op: "<<", Width: 16,
			X: &ir.Expr{Kind: ir.EUn, Op: "cast", Width: 16, X: bslice(0, 8)},
			Y: ir.Const(3, 16)},
		Y: ir.Const(7, 16)}
	_, inv, _, err := affineKey(e)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := inv(8*200 + 7); !ok || v != 200 {
		t.Errorf("inv = %d %v", v, ok)
	}
	if _, ok := inv(9); ok {
		t.Error("non-representable value inverted")
	}
}

func TestAffineRejections(t *testing.T) {
	// Two variables.
	two := &ir.Expr{Kind: ir.EBin, Op: "+", Width: 16, X: bslice(0, 8), Y: bslice(8, 8)}
	if _, _, _, err := affineKey(two); err == nil {
		t.Error("two-variable expression accepted")
	}
	// Wrapping risk: 8-bit expression of x*8 over an 8-bit column.
	wrap := &ir.Expr{Kind: ir.EBin, Op: "*", Width: 8, X: bslice(0, 8), Y: ir.Const(8, 8)}
	if _, _, _, err := affineKey(wrap); err == nil {
		t.Error("wrapping affine accepted")
	}
	// Non-affine op.
	xor := &ir.Expr{Kind: ir.EBin, Op: "^", Width: 8, X: bslice(0, 8), Y: ir.Const(1, 8)}
	if _, _, _, err := affineKey(xor); err == nil {
		t.Error("xor accepted as affine")
	}
	// Pure constant.
	if _, _, _, err := affineKey(ir.Const(5, 8)); err == nil {
		t.Error("constant accepted as key")
	}
}

// Property: for random (c, b) with no wrap, inv(c*x+b) == x.
func TestQuickAffineRoundTrip(t *testing.T) {
	f := func(x uint8, cRaw, bRaw uint8) bool {
		c := int64(cRaw%7) + 1
		b := int64(bRaw % 100)
		e := &ir.Expr{Kind: ir.EBin, Op: "+", Width: 32,
			X: &ir.Expr{Kind: ir.EBin, Op: "*", Width: 32,
				X: &ir.Expr{Kind: ir.EUn, Op: "cast", Width: 32, X: bslice(0, 8)},
				Y: ir.Const(uint64(c), 32)},
			Y: ir.Const(uint64(b), 32)}
		_, inv, _, err := affineKey(e)
		if err != nil {
			return false
		}
		v := uint64(int64(x)*c + b)
		got, ok := inv(v)
		return ok && got == uint64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
