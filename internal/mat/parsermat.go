package mat

import (
	"fmt"

	"microp4/internal/analysis"
	"microp4/internal/ir"
	"microp4/internal/types"
)

// entryKV is one key column's match in one entry.
type entryKV struct {
	col     keyCol
	value   uint64
	mask    uint64
	hasMask bool
}

// buildParserMAT synthesizes the match-action table that replaces an
// instance's parser (paper §5.3, Fig. 10): one entry per (caller context
// × parser path); the match key is the union of byte-stack offsets and
// metadata used in select expressions plus a validity test for the last
// byte extracted; each action copies the path's headers out of the
// byte-stack and records the path id.
func (c *composer) buildParserMAT(inst string, pf *ir.Program, ctxs []ctx, paths []*analysis.ParserPath, ids [][]uint64, elim *elimInfo) (string, error) {
	pp := ppVar(inst)
	tblName := instPrefix(inst, "$parser_tbl")
	cols := newColSet()
	var parentCol *keyCol
	if ctxs[0].parentVar != "" {
		k := keyCol{kind: "ref", ref: ctxs[0].parentVar, w: PathVarWidth}
		cols.add(k)
		parentCol = &k
	}

	type pendingEntry struct {
		kvs    []entryKV
		action string
	}
	var pending []pendingEntry

	if len(ctxs)*len(paths) > c.maxEntries {
		return "", fmt.Errorf("%s: parser MAT would need %d entries (cap %d)", tblName, len(ctxs)*len(paths), c.maxEntries)
	}

	errAct := instPrefix(inst, "$parse_error")
	for ci, cx := range ctxs {
		for pi, path := range paths {
			if path.Rejected {
				// Reject-terminated path: an explicit error entry in DFS
				// position, so a rejecting select decision cannot fall
				// through to a later (less constrained) path's entry.
				kvs, err := c.rejectPathEntry(pf, cx, path)
				if err == errUnsatPath {
					continue
				}
				if err != nil {
					return "", err
				}
				if parentCol != nil {
					kvs = append([]entryKV{{col: *parentCol, value: cx.parentVal}}, kvs...)
				}
				for _, kv := range kvs {
					cols.add(kv.col)
				}
				pending = append(pending, pendingEntry{kvs: kvs, action: errAct})
				continue
			}
			kvs, act, err := c.parserPathEntry(inst, pf, cx, path, ids[ci][pi], ci, pi, elim)
			if err == errUnsatPath {
				continue
			}
			if err != nil {
				return "", err
			}
			if parentCol != nil {
				kvs = append([]entryKV{{col: *parentCol, value: cx.parentVal}}, kvs...)
			}
			for _, kv := range kvs {
				cols.add(kv.col)
			}
			pending = append(pending, pendingEntry{kvs: kvs, action: act})
			// Truncation entry: a packet that satisfies this path's
			// select constraints but is too short must reject — it must
			// not fall through to a shorter path's (less constrained)
			// entry. Same keys with the validity bit inverted.
			if path.Bytes > 0 {
				tkvs := append([]entryKV(nil), kvs...)
				last := &tkvs[len(tkvs)-1]
				if last.col.kind != "bvalid" {
					return "", fmt.Errorf("%s: internal: path entry does not end in a validity key", tblName)
				}
				last.value = 0
				pending = append(pending, pendingEntry{kvs: tkvs, action: errAct})
			}
		}
	}

	// Assemble the table: canonical column order, entries in DFS priority
	// order with don't-cares for absent columns.
	ordered := cols.sorted()
	tbl := &ir.Table{Name: tblName, Synthetic: true}
	for _, col := range ordered {
		mk := "ternary"
		if parentCol != nil && col == *parentCol {
			mk = "exact"
		}
		tbl.Keys = append(tbl.Keys, ir.Key{Expr: col.expr(), MatchKind: mk})
	}
	for _, pe := range pending {
		ent := ir.Entry{Action: ir.ActionCall{Name: pe.action}}
		byCol := make(map[keyCol]entryKV, len(pe.kvs))
		for _, kv := range pe.kvs {
			byCol[kv.col] = kv
		}
		for _, col := range ordered {
			kv, ok := byCol[col]
			if !ok {
				ent.Keys = append(ent.Keys, ir.EntryKey{DontCare: true})
				continue
			}
			ent.Keys = append(ent.Keys, ir.EntryKey{Value: kv.value, Mask: kv.mask, HasMask: kv.hasMask})
		}
		tbl.Entries = append(tbl.Entries, ent)
		if !contains(tbl.Actions, pe.action) {
			tbl.Actions = append(tbl.Actions, pe.action)
		}
	}
	// Default: parse error — record NoMatch and set the sticky
	// parser-error flag that drops the packet at end of pipeline (paper
	// Fig. 10c: default_action set_parser_error).
	c.out.Actions[errAct] = &ir.Action{
		Name: errAct,
		Body: []*ir.Stmt{
			{Kind: ir.SAssign, LHS: ir.Ref(pp, PathVarWidth), RHS: ir.Const(NoMatch, PathVarWidth)},
			{Kind: ir.SAssign, LHS: ir.Ref("$im.out_port", 9), RHS: ir.Const(types.DropPort, 9)},
			{Kind: ir.SAssign, LHS: ir.Ref("$im.$perr", 1), RHS: ir.Const(1, 1)},
		},
	}
	tbl.Actions = append(tbl.Actions, errAct)
	tbl.Default = &ir.ActionCall{Name: errAct}
	c.out.Tables[tblName] = tbl
	return tblName, nil
}

// rejectPathEntry computes the key matches of a reject-terminated path
// (constraints only, no action, no validity requirement).
func (c *composer) rejectPathEntry(pf *ir.Program, cx ctx, path *analysis.ParserPath) ([]entryKV, error) {
	pe := newPathEnv(pf)
	off := cx.base
	var kvs []entryKV
	for _, step := range path.Steps {
		for _, s := range step.Stmts {
			switch s.Kind {
			case ir.SExtract:
				ht, err := c.headerTypeOf(pf, s.Hdr)
				if err != nil {
					return nil, err
				}
				pe.recordExtract(s.Hdr, off)
				off += ht.ByteSize()
			case ir.SAssign:
				pe.recordAssign(s)
			}
		}
		if cst := step.Constraint; cst != nil && !cst.Default {
			ckvs, sat, err := constraintKVs(pe, cst.Exprs, cst.Case)
			if err != nil {
				return nil, fmt.Errorf("%s state %s: %v", pf.Name, step.State, err)
			}
			if !sat {
				return nil, errUnsatPath
			}
			kvs = append(kvs, ckvs...)
		}
	}
	return kvs, nil
}

// parserPathEntry computes one (context × path) entry's key matches and
// synthesizes its action.
func (c *composer) parserPathEntry(inst string, pf *ir.Program, cx ctx, path *analysis.ParserPath, id uint64, ci, pi int, elim *elimInfo) ([]entryKV, string, error) {
	pe := newPathEnv(pf)
	off := cx.base
	var kvs []entryKV
	var body []*ir.Stmt

	// The action first records the path id.
	body = append(body, &ir.Stmt{
		Kind: ir.SAssign,
		LHS:  ir.Ref(ppVar(inst), PathVarWidth),
		RHS:  ir.Const(id, PathVarWidth),
	})

	for _, step := range path.Steps {
		for _, s := range step.Stmts {
			switch s.Kind {
			case ir.SExtract:
				if s.VarSize != nil {
					return nil, "", fmt.Errorf("%s: varbit extract of %s survived the midend (run the varbit transformation first)", pf.Name, s.Hdr)
				}
				ht, err := c.headerTypeOf(pf, s.Hdr)
				if err != nil {
					return nil, "", err
				}
				pe.recordExtract(s.Hdr, off)
				body = append(body, &ir.Stmt{Kind: ir.SSetValid, Hdr: s.Hdr})
				for _, f := range ht.Fields {
					if elim.skipParseCopy(s.Hdr, f.Name) {
						continue // §8.1: nothing reads this copy
					}
					body = append(body, &ir.Stmt{
						Kind: ir.SAssign,
						LHS:  ir.Ref(s.Hdr+"."+f.Name, f.Width),
						RHS:  &ir.Expr{Kind: ir.EBSlice, Off: off*8 + f.Offset, Width: f.Width},
					})
				}
				off += ht.ByteSize()
			case ir.SAssign:
				pe.recordAssign(s)
				body = append(body, s.Clone())
			default:
				body = append(body, s.Clone())
			}
		}
		if cst := step.Constraint; cst != nil && !cst.Default {
			ckvs, sat, err := constraintKVs(pe, cst.Exprs, cst.Case)
			if err != nil {
				return nil, "", fmt.Errorf("%s state %s: %v", pf.Name, step.State, err)
			}
			if !sat {
				return nil, "", errUnsatPath
			}
			kvs = append(kvs, ckvs...)
		}
	}
	// Validity of the last byte extracted on the path (paper §5.3: "the
	// key also encodes a validity test for the last byte extracted").
	if path.Bytes > 0 {
		kvs = append(kvs, entryKV{
			col:   keyCol{kind: "bvalid", off: cx.base + path.Bytes - 1, w: 1},
			value: 1,
		})
	}
	actName := fmt.Sprintf("%s$parse_c%d_p%d", sanitize(inst), ci, pi)
	c.out.Actions[actName] = &ir.Action{Name: actName, Body: body}
	return kvs, actName, nil
}

// declOf resolves a header instance path to its declaration, or returns
// a diagnostic error when the linked program has no such declaration —
// a malformed composition must surface as a compile error, not a panic.
func declOf(pf *ir.Program, path string) (*ir.Decl, error) {
	d := pf.DeclByPath(path)
	if d == nil {
		return nil, fmt.Errorf("%s: no declaration for header %s (extracted by a parser state the linker retained)", pf.Name, path)
	}
	return d, nil
}

// headerTypeOf resolves an extract target to its header type via declOf.
func (c *composer) headerTypeOf(pf *ir.Program, hdr string) (*ir.HeaderType, error) {
	d, err := declOf(pf, hdr)
	if err != nil {
		return nil, err
	}
	ht := c.out.Headers[d.TypeName]
	if ht == nil {
		return nil, fmt.Errorf("%s: header %s has unknown type %s", pf.Name, hdr, d.TypeName)
	}
	return ht, nil
}
