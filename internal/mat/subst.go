package mat

import (
	"fmt"
	"strings"

	"microp4/internal/ir"
)

// pathEnv tracks, along one parser path, the forward-substitution
// environment (paper §5.3: "Forward Substitution on every path to
// eliminate any anti-dependency") and the absolute byte offset of every
// header extracted so far.
type pathEnv struct {
	defs   map[string]*ir.Expr // local var -> substituted definition
	hdrOff map[string]int      // header instance path -> absolute byte offset
	pl     interface {
		DeclByPath(string) *ir.Decl
	}
	headers map[string]*ir.HeaderType
}

func newPathEnv(pf *ir.Program) *pathEnv {
	return &pathEnv{
		defs:    make(map[string]*ir.Expr),
		hdrOff:  make(map[string]int),
		pl:      pf,
		headers: pf.Headers,
	}
}

// fieldSlice resolves a ref to a header field of an already-extracted
// header into a byte-stack slice; returns nil if the ref is not such a
// field.
func (pe *pathEnv) fieldSlice(ref string, w int) *ir.Expr {
	i := strings.LastIndexByte(ref, '.')
	if i < 0 {
		return nil
	}
	hdrPath, field := ref[:i], ref[i+1:]
	off, extracted := pe.hdrOff[hdrPath]
	if !extracted {
		return nil
	}
	d := pe.pl.DeclByPath(hdrPath)
	if d == nil || d.Kind != ir.DeclHeader {
		return nil
	}
	ht := pe.headers[d.TypeName]
	if ht == nil {
		return nil
	}
	f := ht.Field(field)
	if f == nil {
		return nil
	}
	return &ir.Expr{Kind: ir.EBSlice, Off: off*8 + f.Offset, Width: w}
}

// subst rewrites e: refs with path-local definitions are replaced by
// those definitions; refs to fields of extracted headers become
// byte-stack slices; everything else is kept.
func (pe *pathEnv) subst(e *ir.Expr) *ir.Expr {
	if e == nil {
		return nil
	}
	switch e.Kind {
	case ir.ERef:
		if d, ok := pe.defs[e.Ref]; ok {
			return d.Clone()
		}
		if bs := pe.fieldSlice(e.Ref, e.Width); bs != nil {
			return bs
		}
		return e.Clone()
	case ir.ESlice:
		x := pe.subst(e.X)
		if x.Kind == ir.EBSlice {
			// Fold a bit-slice of a byte-stack slice: [hi:lo] selects
			// bits counted from the LSB of the W-bit value.
			return &ir.Expr{
				Kind:  ir.EBSlice,
				Off:   x.Off + (x.Width - 1 - e.Hi),
				Width: e.Hi - e.Lo + 1,
			}
		}
		out := e.Clone()
		out.X = x
		return out
	case ir.EBin, ir.EUn:
		out := e.Clone()
		out.X = pe.subst(e.X)
		out.Y = pe.subst(e.Y)
		return out
	default:
		return e.Clone()
	}
}

// recordAssign updates the environment for an assignment executed along
// the path. Non-trivial left sides conservatively invalidate nothing
// (they are not plain locals).
func (pe *pathEnv) recordAssign(s *ir.Stmt) {
	if s.LHS == nil || s.LHS.Kind != ir.ERef {
		return
	}
	pe.defs[s.LHS.Ref] = pe.subst(s.RHS)
}

// recordExtract updates header offsets for an extract at absolute byte
// offset off.
func (pe *pathEnv) recordExtract(hdr string, off int) {
	pe.hdrOff[hdr] = off
}

// keyExpr validates that a substituted select expression can serve as a
// MAT key column.
func keyExpr(e *ir.Expr) (*ir.Expr, error) {
	switch e.Kind {
	case ir.EBSlice, ir.ERef, ir.EIsValid, ir.EBValid:
		return e, nil
	case ir.EUn:
		if e.Op == "cast" {
			inner, err := keyExpr(e.X)
			if err != nil {
				return nil, err
			}
			// A widening/narrowing cast of a matchable key keeps the
			// inner column; constants are fitted by the caller.
			return inner, nil
		}
	}
	return nil, fmt.Errorf("select expression %s cannot be converted to a match key", e)
}

// affineKey reduces a substituted select expression to a matchable
// column plus an inverse: selecting on c*X + b with case value v becomes
// matching X against (v-b)/c. This is what makes the §C varbit size
// dispatch — select(((bit<32>)ihl - 5) * 32) — MAT-encodable. The
// inversion is exact only when the affine image cannot wrap the
// expression's width, which the builder verifies against the column
// width; non-affine or wrapping expressions fall back to an error.
// The returned invert maps a case value to the column value, reporting
// ok=false for unsatisfiable cases (whose entries are simply skipped).
func affineKey(e *ir.Expr) (col *ir.Expr, invert func(uint64) (uint64, bool), identity bool, err error) {
	var c, b int64 = 1, 0
	var base *ir.Expr
	width := e.Width

	var walk func(x *ir.Expr) error
	walk = func(x *ir.Expr) error {
		switch x.Kind {
		case ir.EBSlice, ir.ERef, ir.EIsValid, ir.EBValid:
			if base != nil {
				return fmt.Errorf("more than one variable in select expression")
			}
			base = x
			return nil
		case ir.EUn:
			if x.Op == "cast" {
				return walk(x.X)
			}
		case ir.EBin:
			constSide := func(y *ir.Expr) (int64, bool) {
				if y.Kind == ir.EConst {
					return int64(y.Value), true
				}
				return 0, false
			}
			switch x.Op {
			case "+":
				if k, ok := constSide(x.Y); ok {
					if err := walk(x.X); err != nil {
						return err
					}
					b += k
					return nil
				}
				if k, ok := constSide(x.X); ok {
					if err := walk(x.Y); err != nil {
						return err
					}
					b += k
					return nil
				}
			case "-":
				if k, ok := constSide(x.Y); ok {
					if err := walk(x.X); err != nil {
						return err
					}
					b -= k
					return nil
				}
			case "*":
				if k, ok := constSide(x.Y); ok && k > 0 {
					if err := walk(x.X); err != nil {
						return err
					}
					c *= k
					b *= k
					return nil
				}
				if k, ok := constSide(x.X); ok && k > 0 {
					if err := walk(x.Y); err != nil {
						return err
					}
					c *= k
					b *= k
					return nil
				}
			case "<<":
				if k, ok := constSide(x.Y); ok && k >= 0 && k < 32 {
					if err := walk(x.X); err != nil {
						return err
					}
					c <<= uint(k)
					b <<= uint(k)
					return nil
				}
			}
		}
		return fmt.Errorf("select expression %s is not affine in one key", e)
	}
	if err := walk(e); err != nil {
		return nil, nil, false, err
	}
	if base == nil {
		return nil, nil, false, fmt.Errorf("select expression %s has no variable", e)
	}
	// Wraparound check: the affine image of the column's whole range
	// must fit the expression width.
	cw := base.Width
	if cw <= 0 || cw > 32 {
		cw = 32
	}
	maxImage := c*((int64(1)<<uint(cw))-1) + b
	if width > 0 && width < 63 && maxImage >= int64(1)<<uint(width) {
		return nil, nil, false, fmt.Errorf("affine select %s may wrap; cannot invert", e)
	}
	inv := func(v uint64) (uint64, bool) {
		t := int64(v) - b
		if t < 0 || t%c != 0 {
			return 0, false
		}
		x := t / c
		if x >= int64(1)<<uint(cw) {
			return 0, false
		}
		return uint64(x), true
	}
	if c == 1 && b == 0 {
		inv = func(v uint64) (uint64, bool) { return v, true }
		return base, inv, true, nil
	}
	return base, inv, false, nil
}

// constraintKVs converts one taken select constraint into entry key
// matches under the path environment, inverting affine expressions.
// sat=false marks an unsatisfiable case: the entry is unreachable and
// the caller skips it.
func constraintKVs(pe *pathEnv, exprs []*ir.Expr, tc *ir.TransCase) (kvs []entryKV, sat bool, err error) {
	for i, e := range exprs {
		if tc.DontCare[i] {
			continue
		}
		se := pe.subst(e)
		base, inv, identity, err := affineKey(se)
		if err != nil {
			return nil, false, err
		}
		col, err := colOf(base)
		if err != nil {
			return nil, false, err
		}
		if tc.HasMask[i] {
			if !identity {
				return nil, false, fmt.Errorf("masked select case on non-trivial expression %s", se)
			}
			kvs = append(kvs, entryKV{col: col, value: tc.Values[i], mask: tc.Masks[i], hasMask: true})
			continue
		}
		v, ok := inv(tc.Values[i])
		if !ok {
			return nil, false, nil
		}
		kvs = append(kvs, entryKV{col: col, value: v})
	}
	return kvs, true, nil
}
