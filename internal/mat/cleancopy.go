package mat

import (
	"microp4/internal/ir"
)

// elimInfo carries the clean-copy analysis of one module instance
// (§8.1: "analyze the deparser and parser of consecutive programs for
// partial equivalence ... compressing or even eliminating unnecessary
// deparsing and parsing").
type elimInfo struct {
	enabled bool
	// clean marks header instances whose wire bytes the module cannot
	// change: no field writes, no setValid/setInvalid.
	clean map[string]bool
	// reads collects every scalar path the module's control, tables,
	// conditions, and call arguments read; the deparser MAT's surviving
	// write-backs are added by the caller.
	reads map[string]bool
}

// analyzeCleanCopies inspects a (prefixed) module for modified headers
// and read fields.
func (c *composer) analyzeCleanCopies(pf *ir.Program) *elimInfo {
	e := &elimInfo{
		enabled: c.opts.EliminateCleanCopies,
		clean:   make(map[string]bool),
		reads:   make(map[string]bool),
	}
	written := make(map[string]bool) // header instances with any field write
	touched := make(map[string]bool) // setValid/setInvalid targets

	hdrOfRef := func(ref string) string {
		for i := len(ref) - 1; i > 0; i-- {
			if ref[i] != '.' {
				continue
			}
			if d := pf.DeclByPath(ref[:i]); d != nil && d.Kind == ir.DeclHeader {
				return ref[:i]
			}
		}
		return ""
	}
	var visit func(s *ir.Stmt)
	addReads := func(x *ir.Expr) {
		if x == nil {
			return
		}
		x.Walk(func(ex *ir.Expr) {
			if ex.Kind == ir.ERef {
				e.reads[ex.Ref] = true
			}
		})
	}
	visit = func(s *ir.Stmt) {
		switch s.Kind {
		case ir.SAssign:
			addReads(s.RHS)
			lhs := s.LHS
			if lhs.Kind == ir.ESlice {
				addReads(lhs.X) // read-modify-write
				lhs = lhs.X
			}
			if lhs.Kind == ir.ERef {
				if h := hdrOfRef(lhs.Ref); h != "" {
					written[h] = true
				}
			}
		case ir.SSetValid, ir.SSetInvalid:
			touched[s.Hdr] = true
		case ir.SCallModule:
			for _, a := range s.Args {
				if a.Dir != "out" {
					addReads(a.Expr)
				}
				if a.Dir == "out" || a.Dir == "inout" {
					lhs := a.Expr
					if lhs.Kind == ir.ESlice {
						lhs = lhs.X
					}
					if lhs != nil && lhs.Kind == ir.ERef {
						if h := hdrOfRef(lhs.Ref); h != "" {
							written[h] = true
						}
					}
				}
			}
		case ir.SMethod:
			for _, a := range s.Args {
				addReads(a.Expr)
			}
			// Stack ops were unrolled; any other extern method with a
			// header-ish target is treated as a write conservatively.
			if h := hdrOfRef(s.Target + ".x"); h != "" {
				written[h] = true
			}
		}
		addReads(s.Cond)
	}
	ir.WalkStmts(pf.Apply, visit)
	for _, a := range pf.Actions {
		ir.WalkStmts(a.Body, visit)
	}
	for _, t := range pf.Tables {
		for _, k := range t.Keys {
			addReads(k.Expr)
		}
	}
	// Parser statements execute inside the synthesized parse actions;
	// anything they read must still be available, and select expressions
	// may reference locals assigned from fields.
	if pf.Parser != nil {
		for _, st := range pf.Parser.States {
			ir.WalkStmts(st.Stmts, visit)
			if st.Trans != nil {
				for _, ex := range st.Trans.Exprs {
					addReads(ex)
				}
			}
		}
	}
	for _, d := range pf.Decls {
		if d.Kind != ir.DeclHeader {
			continue
		}
		if !written[d.Path] && !touched[d.Path] {
			e.clean[d.Path] = true
		}
	}
	return e
}

// skipParseCopy reports whether the byte-stack→field copy of field f of
// header h can be elided: nothing reads it and the header's write-back
// (if any) will not need it.
func (e *elimInfo) skipParseCopy(h, f string) bool {
	if !e.enabled {
		return false
	}
	return !e.reads[h+"."+f]
}

// skipWriteBack reports whether the field→byte-stack copies of header h
// can be elided in a deparse action that would place h at the same byte
// offset it was parsed from.
func (e *elimInfo) skipWriteBack(h string) bool {
	return e.enabled && e.clean[h]
}
