package mat

import (
	"sort"

	"microp4/internal/ir"
)

// SlotMap is the slot-compilation metadata of a composed pipeline: every
// scalar storage path (header fields, metadata, path-id variables,
// action parameters), every header validity bit, every register
// instance, and every table is interned into a dense integer index. An
// engine that resolves references through a SlotMap can keep its
// per-packet state in flat slices ({scalars []uint64, valid []bool})
// instead of string-keyed maps — the same lowering a hardware backend
// performs when it assigns PHV containers and table ids.
//
// The map is a superset by construction: it interns every declared
// storage path plus every path reachable from the pipeline's statement
// trees, action bodies, and table keys, so a compiler walking the same
// trees never encounters an unmapped reference.
type SlotMap struct {
	scalars    map[string]int
	valids     map[string]int
	tables     map[string]int
	registers  map[string]int // register name -> index into Pipeline.Registers
	flowtables map[string]int // flowtable name -> index into Pipeline.FlowTables
}

// Scalar returns the dense index of a scalar storage path.
func (sm *SlotMap) Scalar(path string) (int, bool) {
	i, ok := sm.scalars[path]
	return i, ok
}

// Valid returns the dense index of a header instance's validity bit.
func (sm *SlotMap) Valid(path string) (int, bool) {
	i, ok := sm.valids[path]
	return i, ok
}

// Table returns the dense index of a table.
func (sm *SlotMap) Table(name string) (int, bool) {
	i, ok := sm.tables[name]
	return i, ok
}

// Register returns the index of a register instance in Pipeline.Registers.
func (sm *SlotMap) Register(name string) (int, bool) {
	i, ok := sm.registers[name]
	return i, ok
}

// FlowTable returns the index of a flowtable instance in
// Pipeline.FlowTables.
func (sm *SlotMap) FlowTable(name string) (int, bool) {
	i, ok := sm.flowtables[name]
	return i, ok
}

// NumScalars returns the number of scalar slots.
func (sm *SlotMap) NumScalars() int { return len(sm.scalars) }

// NumValids returns the number of validity-bit slots.
func (sm *SlotMap) NumValids() int { return len(sm.valids) }

// NumTables returns the number of table slots.
func (sm *SlotMap) NumTables() int { return len(sm.tables) }

// Slots returns the pipeline's slot map, computing it on first use.
// The result is immutable and safe for concurrent readers.
func (pl *Pipeline) Slots() *SlotMap {
	pl.slotsOnce.Do(func() { pl.slots = buildSlots(pl) })
	return pl.slots
}

// IntrinsicScalars are the well-known scalar paths every engine
// materializes regardless of whether the program names them: the im_t
// intrinsic metadata fields, the drop/output port, the parser error
// register, and the multicast engine's staged group id.
var IntrinsicScalars = []string{
	"$im.meta.IN_PORT",
	"$im.meta.IN_TIMESTAMP",
	"$im.meta.PKT_LEN",
	"$im.meta.QUEUE_DEPTH",
	"$im.out_port",
	"$im.$perr",
	"$mc.group",
}

func buildSlots(pl *Pipeline) *SlotMap {
	sm := &SlotMap{
		scalars:    make(map[string]int),
		valids:     make(map[string]int),
		tables:     make(map[string]int),
		registers:  make(map[string]int),
		flowtables: make(map[string]int),
	}
	for _, p := range IntrinsicScalars {
		sm.scalar(p)
	}
	// Declared storage: scalars and header validity bits.
	for i := range pl.Decls {
		d := &pl.Decls[i]
		switch d.Kind {
		case ir.DeclBits, ir.DeclBool:
			sm.scalar(d.Path)
		case ir.DeclHeader, ir.DeclStack:
			sm.valid(d.Path)
		}
	}
	// Everything reachable from the pipeline's control flow.
	sm.walkStmts(pl.Stmts)
	// Action bodies and parameter slots ("<action>#<param>"), in sorted
	// order so slot numbering is reproducible across runs.
	for _, name := range sortedKeys(pl.Actions) {
		act := pl.Actions[name]
		for _, p := range act.Params {
			sm.scalar(act.Name + "#" + p.Name)
		}
		sm.walkStmts(act.Body)
	}
	// Tables and their key expressions.
	for i, name := range sortedKeys(pl.Tables) {
		sm.tables[name] = i
		for _, k := range pl.Tables[name].Keys {
			sm.walkExpr(k.Expr)
		}
	}
	for i := range pl.Registers {
		sm.registers[pl.Registers[i].Name] = i
	}
	for i := range pl.FlowTables {
		sm.flowtables[pl.FlowTables[i].Name] = i
	}
	return sm
}

func (sm *SlotMap) scalar(path string) int {
	if i, ok := sm.scalars[path]; ok {
		return i
	}
	i := len(sm.scalars)
	sm.scalars[path] = i
	return i
}

func (sm *SlotMap) valid(path string) int {
	if i, ok := sm.valids[path]; ok {
		return i
	}
	i := len(sm.valids)
	sm.valids[path] = i
	return i
}

func (sm *SlotMap) walkExpr(e *ir.Expr) {
	e.Walk(func(x *ir.Expr) {
		switch x.Kind {
		case ir.ERef:
			sm.scalar(x.Ref)
		case ir.EIsValid:
			sm.valid(x.Ref)
		}
	})
}

func (sm *SlotMap) walkStmts(ss []*ir.Stmt) {
	ir.WalkStmts(ss, func(s *ir.Stmt) {
		sm.walkExpr(s.LHS)
		sm.walkExpr(s.RHS)
		sm.walkExpr(s.Cond)
		sm.walkExpr(s.VarSize)
		for i := range s.Args {
			sm.walkExpr(s.Args[i].Expr)
		}
		switch s.Kind {
		case ir.SSetValid, ir.SSetInvalid:
			sm.valid(s.Hdr)
		}
	})
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
