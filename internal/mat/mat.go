// Package mat implements µP4C's midend homogenization (paper §5.3): it
// transforms parsers and deparsers into match-action tables operating on
// a synthesized byte-stack, and composes the linked module graph into a
// single MAT-only pipeline by inlining callees at their apply() sites.
//
// Composition uses the path-product described in §5.2/§5.3: a callee's
// byte offsets depend on how many bytes its caller's parser consumed,
// which varies per caller parse path. Each synthesized parser MAT action
// records its path in a per-instance path-id metadata field ("$pp.<inst>");
// a callee's MAT entries match on the caller's path-id and carry absolute
// byte-stack offsets for that (caller path × callee path) combination.
package mat

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"microp4/internal/analysis"
	"microp4/internal/ir"
	"microp4/internal/linker"
)

// errUnsatPath marks a parser path whose select constraints are
// unsatisfiable after affine inversion; its entries are skipped.
var errUnsatPath = fmt.Errorf("unsatisfiable parser path")

// NoMatch is the path-id value meaning "parser rejected the packet".
const NoMatch = 0xFFFF

// PathVarWidth is the bit width of path-id metadata fields.
const PathVarWidth = 16

// Pipeline is the composed, MAT-only program: the output of the midend.
type Pipeline struct {
	Name    string
	BsBytes int // byte-stack size (Eq. 4) of the composed program
	MinPkt  int

	Decls   []ir.Decl
	Headers map[string]*ir.HeaderType
	Tables  map[string]*ir.Table
	Actions map[string]*ir.Action
	Stmts   []*ir.Stmt // MAT-only control flow

	PathVars []string // "$pp.<inst>" decl paths, one per inlined instance
	// UserTables lists the non-synthetic tables (control-plane visible).
	UserTables []string
	// Registers lists the register instances (§8.2 stateful extension),
	// fully qualified by module instance path.
	Registers []ir.Instance
	// FlowTables lists the flowtable instances (the flow-state
	// extension), fully qualified by module instance path.
	FlowTables []ir.Instance
	// Instances lists every inlined module instance path ("" = main).
	Instances []string

	// Slot-compilation metadata, computed lazily by Slots().
	slotsOnce sync.Once
	slots     *SlotMap
}

// Table returns the named table, or nil.
func (pl *Pipeline) Table(name string) *ir.Table { return pl.Tables[name] }

// WithStmts returns a shallow copy of the pipeline with its control
// flow replaced. The slot-compilation cache is deliberately left
// behind: the copy's statements differ, so it re-derives its SlotMap
// lazily on first use.
func (pl *Pipeline) WithStmts(stmts []*ir.Stmt) *Pipeline {
	return &Pipeline{
		Name:       pl.Name,
		BsBytes:    pl.BsBytes,
		MinPkt:     pl.MinPkt,
		Decls:      pl.Decls,
		Headers:    pl.Headers,
		Tables:     pl.Tables,
		Actions:    pl.Actions,
		Stmts:      stmts,
		PathVars:   pl.PathVars,
		UserTables: pl.UserTables,
		Registers:  pl.Registers,
		FlowTables: pl.FlowTables,
		Instances:  pl.Instances,
	}
}

// DeclByPath returns the storage declaration for path, or nil.
func (pl *Pipeline) DeclByPath(path string) *ir.Decl {
	for i := range pl.Decls {
		if pl.Decls[i].Path == path {
			return &pl.Decls[i]
		}
	}
	return nil
}

// HeaderOf returns the header type of the instance at path, or nil.
func (pl *Pipeline) HeaderOf(path string) *ir.HeaderType {
	d := pl.DeclByPath(path)
	if d == nil || (d.Kind != ir.DeclHeader && d.Kind != ir.DeclStack) {
		return nil
	}
	return pl.Headers[d.TypeName]
}

// ctx is one caller context for an instance: the caller's path-id value
// that selects this context, and the resulting base byte offset of the
// instance's packet view.
type ctx struct {
	parentVar string // "$pp.<parent>" ref; "" for the main program
	parentVal uint64
	base      int
}

// Options tune composition.
type Options struct {
	// EliminateCleanCopies enables the §8.1 optimization: headers a
	// module never modifies (no field writes, no setValid/setInvalid)
	// skip their deparser write-back when re-emitted at the position
	// they were parsed from — the bytes are already in the byte-stack —
	// and fields nothing reads skip their parser copy-out. Sequentially
	// composed modules that "deparse the inverse of the next parser"
	// then stop paying for it (fewer dependencies, fewer MAU stages).
	EliminateCleanCopies bool
	// SplitParserMATs selects the other §8.1 encoding: one MAT per
	// parse depth (a prefix-trie walk) instead of one path-product MAT
	// per parser — fewer, narrower entries per table at the cost of a
	// dependent table chain.
	SplitParserMATs bool
}

type composer struct {
	linked *linker.Linked
	stats  *analysis.Result
	opts   Options
	out    *Pipeline
	ppSeq  uint64 // global path-id sequence (0 is reserved)
	// maxEntries caps synthesized table size.
	maxEntries int
}

// Compose homogenizes and composes a linked program into a Pipeline.
// The linked IR must already be free of header stacks and varbit fields
// (the midend driver runs those transformations first).
func Compose(l *linker.Linked, stats *analysis.Result) (*Pipeline, error) {
	return ComposeWith(l, stats, Options{})
}

// ComposeWith is Compose with explicit options.
func ComposeWith(l *linker.Linked, stats *analysis.Result, opts Options) (*Pipeline, error) {
	c := &composer{
		linked: l,
		stats:  stats,
		opts:   opts,
		out: &Pipeline{
			Name:    l.Main.Name,
			Headers: make(map[string]*ir.HeaderType),
			Tables:  make(map[string]*ir.Table),
			Actions: make(map[string]*ir.Action),
		},
		maxEntries: 65536,
	}
	main := c.stats.Main()
	c.out.BsBytes = main.Bs
	c.out.MinPkt = main.MinPkt
	stmts, err := c.inline("", l.Main, []ctx{{base: 0}})
	if err != nil {
		return nil, err
	}
	c.out.Stmts = stmts
	return c.out, nil
}

// instPrefix returns path prefixed by the instance path ("" = main).
func instPrefix(inst, path string) string {
	if inst == "" {
		return path
	}
	return inst + "." + path
}

func ppVar(inst string) string { return instPrefix(inst, "$pp") }

// inline homogenizes one module instance under the given caller contexts
// and returns the statement sequence implementing it.
func (c *composer) inline(inst string, prog *ir.Program, ctxs []ctx) ([]*ir.Stmt, error) {
	pf := prog
	if inst != "" {
		pf = prog.Prefixed(inst)
	}
	// Merge storage, headers, tables, actions.
	c.out.Decls = append(c.out.Decls, pf.Decls...)
	for name, h := range pf.Headers {
		c.out.Headers[name] = h
	}
	for name, t := range pf.Tables {
		if _, dup := c.out.Tables[name]; dup {
			return nil, fmt.Errorf("table %s inlined twice (an instance may be applied only once)", name)
		}
		c.out.Tables[name] = t
		c.out.UserTables = append(c.out.UserTables, name)
	}
	for name, a := range pf.Actions {
		c.out.Actions[name] = a
	}
	c.out.Instances = append(c.out.Instances, inst)
	for _, in := range pf.Instances {
		switch in.Extern {
		case "register":
			c.out.Registers = append(c.out.Registers, in)
		case "flowtable":
			c.out.FlowTables = append(c.out.FlowTables, in)
		}
	}

	// Path-id variable for this instance.
	pp := ppVar(inst)
	c.out.Decls = append(c.out.Decls, ir.Decl{Path: pp, Kind: ir.DeclBits, Width: PathVarWidth})
	c.out.PathVars = append(c.out.PathVars, pp)

	// Enumerate this instance's parser paths (on the prefixed copy, so
	// header paths are already in the composed namespace).
	var paths []*analysis.ParserPath
	if pf.Parser != nil {
		var err error
		paths, err = analysis.EnumerateParserPaths(pf)
		if err != nil {
			return nil, err
		}
	}
	if len(paths) == 0 {
		// A parserless program (or one whose parser extracts nothing on
		// a single trivial path) still gets a path-id per context.
		paths = []*analysis.ParserPath{{}}
	}

	// Assign globally-unique path ids per (ctx, path).
	ids := make([][]uint64, len(ctxs))
	for i := range ctxs {
		ids[i] = make([]uint64, len(paths))
		for j := range paths {
			c.ppSeq++
			if c.ppSeq >= NoMatch {
				return nil, fmt.Errorf("path-id space exhausted (composition too large)")
			}
			ids[i][j] = c.ppSeq
		}
	}

	// Clean-copy analysis (§8.1 optimization): headers this module never
	// modifies and fields nothing reads.
	elim := c.analyzeCleanCopies(pf)

	var stmts []*ir.Stmt
	// The deparser MAT is synthesized first so the parser MAT knows
	// which fields its write-backs still need.
	depTbl, depReads, err := c.buildDeparserMAT(inst, pf, ctxs, paths, ids, elim)
	if err != nil {
		return nil, err
	}
	for f := range depReads {
		elim.reads[f] = true
	}
	split := false
	if c.opts.SplitParserMATs {
		names, err := c.buildParserMATSplit(inst, pf, ctxs, paths, ids, elim)
		if err != nil {
			return nil, err
		}
		if names != nil {
			for _, n := range names {
				stmts = append(stmts, &ir.Stmt{Kind: ir.SApplyTable, Table: n})
			}
			split = true
		}
	}
	if !split {
		parserTbl, err := c.buildParserMAT(inst, pf, ctxs, paths, ids, elim)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, &ir.Stmt{Kind: ir.SApplyTable, Table: parserTbl})
	}

	// Control body with callee calls expanded.
	body, err := c.expandStmts(inst, pf, pf.Apply, ctxs, paths, ids)
	if err != nil {
		return nil, err
	}
	if depTbl != "" {
		body = append(body, &ir.Stmt{Kind: ir.SApplyTable, Table: depTbl})
	}

	// Only run the control/deparser when parsing succeeded.
	guard := &ir.Stmt{
		Kind: ir.SIf,
		Cond: &ir.Expr{Kind: ir.EBin, Op: "!=", Bool: true, Width: 1,
			X: ir.Ref(pp, PathVarWidth), Y: ir.Const(NoMatch, PathVarWidth)},
		Then: body,
	}
	stmts = append(stmts, guard)
	return stmts, nil
}

// expandStmts rewrites a statement list, replacing SCallModule with the
// callee's inlined pipeline plus parameter copy-in/copy-out.
func (c *composer) expandStmts(inst string, pf *ir.Program, ss []*ir.Stmt, ctxs []ctx, paths []*analysis.ParserPath, ids [][]uint64) ([]*ir.Stmt, error) {
	var out []*ir.Stmt
	for _, s := range ss {
		switch s.Kind {
		case ir.SCallModule:
			expanded, err := c.expandCall(inst, pf, s, ctxs, paths, ids)
			if err != nil {
				return nil, err
			}
			out = append(out, expanded...)
		case ir.SIf:
			ns := s.Clone()
			var err error
			ns.Then, err = c.expandStmts(inst, pf, s.Then, ctxs, paths, ids)
			if err != nil {
				return nil, err
			}
			ns.Else, err = c.expandStmts(inst, pf, s.Else, ctxs, paths, ids)
			if err != nil {
				return nil, err
			}
			out = append(out, ns)
		case ir.SSwitch:
			ns := s.Clone()
			for i, cs := range s.Cases {
				body, err := c.expandStmts(inst, pf, cs.Body, ctxs, paths, ids)
				if err != nil {
					return nil, err
				}
				ns.Cases[i].Body = body
			}
			out = append(out, ns)
		case ir.SMethod:
			switch s.Method {
			case "pkt_copy_from", "out_buf_enqueue", "out_buf_merge", "out_buf_to_in_buf", "im_copy_from", "mc_buf_enqueue":
				return nil, fmt.Errorf("%s uses %s; multi-packet programs need the §5.4 orchestration preprocessing (not supported by the linear composer)", pf.Name, s.Method)
			}
			out = append(out, s.Clone())
		default:
			out = append(out, s.Clone())
		}
	}
	return out, nil
}

func (c *composer) expandCall(inst string, pf *ir.Program, call *ir.Stmt, ctxs []ctx, paths []*analysis.ParserPath, ids [][]uint64) ([]*ir.Stmt, error) {
	callee := c.linked.Modules[call.Module]
	if callee == nil {
		return nil, fmt.Errorf("call of unlinked module %s", call.Module)
	}
	if call.PktArg != "" && !strings.HasSuffix(call.PktArg, "$pkt") {
		return nil, fmt.Errorf("call of %s passes local packet %s; multi-packet programs need the §5.4 orchestration preprocessing (not supported by the linear composer)", call.Module, call.PktArg)
	}
	childInst := call.Instance // already prefixed by Prefixed()
	// Child contexts: one per (ctx, parser path) of this instance.
	var childCtxs []ctx
	pp := ppVar(inst)
	for i, cx := range ctxs {
		for j, path := range paths {
			if path.Rejected {
				continue // rejected paths never reach the control
			}
			childCtxs = append(childCtxs, ctx{
				parentVar: pp,
				parentVal: ids[i][j],
				base:      cx.base + path.Bytes,
			})
		}
	}
	if len(childCtxs) == 0 {
		return nil, fmt.Errorf("module %s is applied by %s but unreachable (caller's parser never accepts)", call.Module, inst)
	}
	var out []*ir.Stmt
	// Copy-in: bind in/inout arguments to the callee's parameter storage.
	for k, arg := range call.Args {
		if k >= len(callee.Params) {
			return nil, fmt.Errorf("call of %s has too many arguments", call.Module)
		}
		mp := callee.Params[k]
		dst := childInst + "." + mp.Name
		if mp.Dir == "in" || mp.Dir == "inout" || mp.Dir == "" {
			out = append(out, &ir.Stmt{Kind: ir.SAssign, LHS: ir.Ref(dst, mp.Width), RHS: arg.Expr.Clone()})
		}
	}
	inlined, err := c.inline(childInst, callee, childCtxs)
	if err != nil {
		return nil, err
	}
	out = append(out, inlined...)
	// Copy-out: write back out/inout arguments.
	for k, arg := range call.Args {
		mp := callee.Params[k]
		src := childInst + "." + mp.Name
		if mp.Dir == "out" || mp.Dir == "inout" {
			if arg.Expr.Kind != ir.ERef && arg.Expr.Kind != ir.ESlice {
				return nil, fmt.Errorf("%s argument to %s.%s is not assignable", mp.Dir, childInst, mp.Name)
			}
			out = append(out, &ir.Stmt{Kind: ir.SAssign, LHS: arg.Expr.Clone(), RHS: ir.Ref(src, mp.Width)})
		}
	}
	return out, nil
}

// ----------------------------------------------------------------------------
// Key canonicalization shared by parser and deparser MATs

// keyCol is a canonical key column of a synthesized MAT.
type keyCol struct {
	kind string // "ref", "bslice", "bvalid", "isvalid"
	ref  string
	off  int // bslice bit offset / bvalid byte index
	w    int
}

func (k keyCol) expr() *ir.Expr {
	switch k.kind {
	case "ref":
		return ir.Ref(k.ref, k.w)
	case "bslice":
		return &ir.Expr{Kind: ir.EBSlice, Off: k.off, Width: k.w}
	case "bvalid":
		return &ir.Expr{Kind: ir.EBValid, Off: k.off, Width: 1, Bool: true}
	case "isvalid":
		return &ir.Expr{Kind: ir.EIsValid, Ref: k.ref, Width: 1, Bool: true}
	}
	return nil
}

func colOf(e *ir.Expr) (keyCol, error) {
	switch e.Kind {
	case ir.ERef:
		return keyCol{kind: "ref", ref: e.Ref, w: e.Width}, nil
	case ir.EBSlice:
		return keyCol{kind: "bslice", off: e.Off, w: e.Width}, nil
	case ir.EBValid:
		return keyCol{kind: "bvalid", off: e.Off, w: 1}, nil
	case ir.EIsValid:
		return keyCol{kind: "isvalid", ref: e.Ref, w: 1}, nil
	}
	return keyCol{}, fmt.Errorf("select expression %s is not a matchable key (after substitution)", e)
}

// colSet accumulates the union of key columns across entries, keeping a
// deterministic order: refs first (sorted), then byte-stack slices by
// offset, then validity columns.
type colSet struct {
	cols  []keyCol
	index map[keyCol]int
}

func newColSet() *colSet { return &colSet{index: make(map[keyCol]int)} }

func (cs *colSet) add(k keyCol) int {
	if i, ok := cs.index[k]; ok {
		return i
	}
	cs.cols = append(cs.cols, k)
	cs.index[k] = len(cs.cols) - 1
	return len(cs.cols) - 1
}

func (cs *colSet) sorted() []keyCol {
	out := append([]keyCol(nil), cs.cols...)
	rank := func(k keyCol) int {
		switch k.kind {
		case "ref":
			return 0
		case "bslice":
			return 1
		case "isvalid":
			return 2
		default:
			return 3
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if rank(a) != rank(b) {
			return rank(a) < rank(b)
		}
		if a.ref != b.ref {
			return a.ref < b.ref
		}
		if a.off != b.off {
			return a.off < b.off
		}
		return a.w < b.w
	})
	return out
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// sanitize builds a table/action-safe name fragment from an instance path.
func sanitize(inst string) string {
	if inst == "" {
		return "main"
	}
	return strings.ReplaceAll(strings.ReplaceAll(inst, ".", "_"), "$", "")
}
