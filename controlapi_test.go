package microp4_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"microp4"
	"microp4/internal/lib"
)

// TestControlAPIGoldenJSON pins the exported control-plane schema of
// the flagship router program byte-for-byte. The JSON is the contract
// remote controllers (and the ctrlplane agent's validation layer)
// program against — field renames, reordering, or width changes must
// show up as a reviewed golden diff, not a silent break.
// Refresh with UPDATE_GOLDEN=1 go test -run ControlAPIGolden .
func TestControlAPIGoldenJSON(t *testing.T) {
	dp := compileLib(t, "P4")
	got, err := dp.ControlAPI().ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "controlapi_p4.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("ControlAPI JSON for P4 diverged from %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// TestControlAPIModuleAttribution checks that every table is attributed
// to its owning module instance path (§8.2: per-module control APIs) —
// main-program tables to "", nested instances to their full path.
func TestControlAPIModuleAttribution(t *testing.T) {
	api := compileLib(t, "P6").ControlAPI()
	want := map[string]string{
		"forward_tbl":              "",
		"l3_i.ipv4_i.ipv4_lpm_tbl": "l3_i.ipv4_i",
		"l3_i.ipv6_i.ipv6_lpm_tbl": "l3_i.ipv6_i",
		"sr4_i.sr4_tbl":            "sr4_i",
	}
	got := map[string]string{}
	for _, ct := range api.Tables {
		got[ct.Name] = ct.Module
	}
	for name, module := range want {
		owner, ok := got[name]
		if !ok {
			t.Errorf("table %s missing from control API (have %v)", name, api.Tables)
			continue
		}
		if owner != module {
			t.Errorf("table %s attributed to module %q, want %q", name, owner, module)
		}
	}
}

// TestControlAPIConstEntries checks that compile-time const entries are
// surfaced (they occupy table capacity the controller cannot reclaim).
func TestControlAPIConstEntries(t *testing.T) {
	api := compileLib(t, "P6").ControlAPI()
	for _, ct := range api.Tables {
		want := 0
		if ct.Name == "sr4_i.sr4_tbl" {
			want = 2
		}
		if ct.ConstEntries != want {
			t.Errorf("table %s: const entries = %d, want %d", ct.Name, ct.ConstEntries, want)
		}
	}
}

// TestControlAPIRegisters checks register-array export through a
// stateful composed program (the FlowCount library module).
func TestControlAPIRegisters(t *testing.T) {
	dp := compileStateful(t)
	api := dp.ControlAPI()
	if len(api.Registers) != 1 {
		t.Fatalf("registers = %+v, want exactly fc_i.counters", api.Registers)
	}
	r := api.Registers[0]
	if r.Name != "fc_i.counters" || r.Size != 256 || r.Width != 32 {
		t.Errorf("register = %+v, want {fc_i.counters 256 32}", r)
	}
	// Round-trips through JSON intact.
	b, err := api.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"fc_i.counters"`)) {
		t.Errorf("register name missing from JSON export:\n%s", b)
	}
}

// compileStateful builds the FlowCount counter switch from
// stateful_test.go's source.
func compileStateful(t *testing.T) *microp4.Dataplane {
	t.Helper()
	fcSrc, err := lib.ModuleSource("FlowCount")
	if err != nil {
		t.Fatal(err)
	}
	fc, err := microp4.CompileModule("flowcount.up4", fcSrc)
	if err != nil {
		t.Fatal(err)
	}
	main, err := microp4.CompileModule("counter.up4", statefulTestMain)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := microp4.Build(main, fc)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}
