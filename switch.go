package microp4

import (
	"fmt"
	"sync"
	"sync/atomic"

	"microp4/internal/flow"
	"microp4/internal/obs"
	"microp4/internal/sim"
	"microp4/internal/trace"
)

// Output is one packet leaving the switch.
type Output struct {
	Port uint64
	Data []byte
}

// Engine selects how the dataplane executes packets.
type Engine int

const (
	// EngineCompiled executes the midend's composed MAT pipeline — the
	// abstract machine a hardware target realizes.
	EngineCompiled Engine = iota
	// EngineReference interprets the linked modules with source-level
	// semantics. The two engines are differentially tested to agree.
	EngineReference
)

// generation is one immutable copy-on-write configuration of a switch:
// a compiled dataplane program together with the MAT table state,
// engine instances, and extern state (registers, flowtables) that
// execute it. The switch publishes the live generation through an
// atomic pointer; packet paths load it once per packet, so a cutover is
// adopted only at packet boundaries and a packet never sees a mix of
// two programs — the yanet2 cp_config_gen/dp_config pattern.
type generation struct {
	seq    uint64 // monotone per-switch generation number (1 = initial)
	dp     *Dataplane
	tables *sim.Tables
	exec   *sim.Exec // nil when the midend produced no compiled pipeline
	interp *sim.Interp

	schemaOnce sync.Once
	schema     *ControlSchema // nil when the dataplane has no compiled pipeline
}

// Schema returns the generation's control schema, built once from its
// dataplane's ControlAPI (nil for reference-engine-only programs).
func (g *generation) Schema() *ControlSchema {
	g.schemaOnce.Do(func() {
		if composed, _ := g.dp.Composed(); composed {
			g.schema = g.dp.ControlAPI().Schema()
		}
	})
	return g.schema
}

// Switch is a behavioral V1Model-style target: a single dataplane
// program, control-plane table state, multicast groups, and a
// recirculation path.
//
// Concurrency: Process may be called from multiple goroutines, and the
// control-plane methods (AddEntry, SetDefault, ClearTable,
// SetMulticastGroup) may race live traffic — per-packet engine state is
// goroutine-local, table state is internally synchronized, and the
// switch-level state below (clock, digests, multicast groups) is
// guarded here. The program itself lives in an immutable generation
// adopted per packet, so StageGeneration/CutOver may race traffic too.
type Switch struct {
	engine   Engine
	gen      atomic.Pointer[generation] // live generation (never nil)
	staged   atomic.Pointer[generation] // staged, not yet adopted (nil = none)
	canary   atomic.Pointer[canaryState]
	genSeq   atomic.Uint64
	bus      *sim.Bus // one bus (and one event sequence) across generations
	metrics  *sim.Metrics
	traceOff func() // SetTracer's current subscription

	mu       sync.Mutex // guards mcGroups, digests, and wpool
	mcGroups map[uint64][]uint64
	digests  []uint64

	obPool sync.Pool   // *outBuf: pooled per-packet output state
	wpool  *workerPool // persistent ProcessBatch workers (nil until parallel)
	tracer atomic.Pointer[trace.Recorder]

	// MaxRecirculations bounds the recirculation loop (default 4).
	MaxRecirculations int
	clock             atomic.Uint64
	workers           atomic.Int32 // ProcessBatch parallelism (<=1 = serial)
}

// live returns the current generation (never nil after construction).
func (s *Switch) live() *generation { return s.gen.Load() }

// Digests drains and returns the values the dataplane sent to the
// control plane via im.digest (§6.4's CPU–dataplane interface).
func (s *Switch) Digests() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.digests
	s.digests = nil
	return out
}

// ReadRegister returns cell idx of a register array (§8.2 stateful
// extension), by fully qualified instance path.
func (s *Switch) ReadRegister(path string, idx int) (uint64, error) {
	g := s.live()
	var cells []uint64
	if s.engine == EngineReference || g.exec == nil {
		// Lazily sized on first dataplane access; ask for at least idx+1.
		cells = g.interp.Register(path, idx+1)
	} else {
		cells = g.exec.Register(path)
	}
	if idx < 0 || idx >= len(cells) {
		return 0, fmt.Errorf("register %s has no cell %d", path, idx)
	}
	return cells[idx], nil
}

// FlowTable returns a flowtable instance (the flow-state extension) by
// fully qualified path, or nil when the program declares none by that
// name. The ctrlplane replication layer reads and installs entries
// through it; the dataplane mutates it via ft.upsert.
func (s *Switch) FlowTable(path string) *flow.Table {
	return s.flowTable(s.live(), path)
}

// flowTable resolves a flowtable instance within one generation.
func (s *Switch) flowTable(g *generation, path string) *flow.Table {
	pl := g.dp.res.Pipeline
	if pl == nil {
		return nil
	}
	for i := range pl.FlowTables {
		ft := &pl.FlowTables[i]
		if ft.Name != path {
			continue
		}
		if s.engine == EngineReference || g.exec == nil {
			return g.interp.FlowTable(path, ft.Size, ft.IdleTTL, ft.EstTTL)
		}
		return g.exec.FlowTable(path)
	}
	return nil
}

// FlowTablePaths lists the program's flowtable instances by fully
// qualified path, in declaration order.
func (s *Switch) FlowTablePaths() []string {
	pl := s.live().dp.res.Pipeline
	if pl == nil {
		return nil
	}
	out := make([]string, 0, len(pl.FlowTables))
	for i := range pl.FlowTables {
		out = append(out, pl.FlowTables[i].Name)
	}
	return out
}

// NewSwitch returns a switch running the compiled pipeline.
func (d *Dataplane) NewSwitch() *Switch { return d.NewSwitchWith(EngineCompiled) }

// NewSwitchWith returns a switch with an explicit execution engine.
func (d *Dataplane) NewSwitchWith(engine Engine) *Switch {
	sw := &Switch{
		engine:            engine,
		bus:               sim.NewBus(),
		mcGroups:          make(map[uint64][]uint64),
		MaxRecirculations: 4,
	}
	sw.gen.Store(sw.newGeneration(d))
	return sw
}

// newGeneration builds a fresh generation for dp: new table state, new
// engine instances, extern state zeroed — wired to the switch's shared
// trace bus but not to its metrics (a staged generation must not count
// into the live series; CutOver attaches metrics on adoption).
func (s *Switch) newGeneration(d *Dataplane) *generation {
	t := sim.NewTables()
	g := &generation{seq: s.genSeq.Add(1), dp: d, tables: t,
		interp: sim.NewInterp(d.res.Linked, t)}
	g.interp.SetBus(s.bus)
	if d.res.Pipeline != nil {
		g.exec = sim.NewExec(d.res.Pipeline, t)
		g.exec.SetBus(s.bus)
	}
	return g
}

// attachMetrics points a generation's engines at the switch's metrics
// (no-op before EnableMetrics).
func (s *Switch) attachMetrics(g *generation) {
	if s.metrics == nil {
		return
	}
	g.interp.SetMetrics(s.metrics)
	if g.exec != nil {
		g.exec.SetMetrics(s.metrics)
	}
}

// Schema returns the live generation's control schema, built once from
// the dataplane's ControlAPI. It is nil when the midend produced no
// compiled pipeline (reference-engine-only programs) — there is then no
// schema to validate against and the Try* methods install unchecked.
func (s *Switch) Schema() *ControlSchema { return s.live().Schema() }

// TryAddEntry validates an entry against the control schema (table
// existence, key count and widths, action membership, argument arity
// and widths) and installs it only when valid. A non-nil error is
// always a *ControlError; the table state is untouched on rejection.
func (s *Switch) TryAddEntry(table string, keys []Key, action string, args ...uint64) error {
	if sc := s.Schema(); sc != nil {
		if err := sc.ValidateAddEntry(table, keys, action, args); err != nil {
			return err
		}
	}
	s.live().tables.AddEntry(table, toRuntime(keys), action, args...)
	return nil
}

// TrySetDefault validates and applies a default-action override.
func (s *Switch) TrySetDefault(table, action string, args ...uint64) error {
	if sc := s.Schema(); sc != nil {
		if err := sc.ValidateSetDefault(table, action, args); err != nil {
			return err
		}
	}
	s.live().tables.SetDefault(table, action, args...)
	return nil
}

// TryClearTable validates that the table exists, then clears it.
func (s *Switch) TryClearTable(table string) error {
	if sc := s.Schema(); sc != nil {
		if err := sc.ValidateClearTable(table); err != nil {
			return err
		}
	}
	s.live().tables.ClearTable(table)
	return nil
}

// TrySetMulticastGroup validates the group id and replication list,
// then programs the packet replication engine.
func (s *Switch) TrySetMulticastGroup(gid uint64, ports ...uint64) error {
	if sc := s.Schema(); sc != nil {
		if err := sc.ValidateSetMulticastGroup(gid, ports); err != nil {
			return err
		}
	}
	s.setMulticastGroup(gid, ports)
	return nil
}

// AddEntry installs a table entry. Table and action names are fully
// qualified by module instance path (see Dataplane.Tables). A thin
// wrapper over TryAddEntry: schema-invalid entries are rejected (and
// the error discarded) instead of sitting inert in table state — use
// TryAddEntry to observe the rejection.
func (s *Switch) AddEntry(table string, keys []Key, action string, args ...uint64) {
	_ = s.TryAddEntry(table, keys, action, args...)
}

// SetDefault overrides a table's default action (see AddEntry on
// validation; use TrySetDefault to observe rejections).
func (s *Switch) SetDefault(table, action string, args ...uint64) {
	_ = s.TrySetDefault(table, action, args...)
}

// ClearTable removes a table's runtime entries.
func (s *Switch) ClearTable(table string) { _ = s.TryClearTable(table) }

// SetMulticastGroup programs the packet replication engine: packets
// sent to group gid are replicated to the given ports. Safe to call
// while packets are being processed.
func (s *Switch) SetMulticastGroup(gid uint64, ports ...uint64) {
	_ = s.TrySetMulticastGroup(gid, ports...)
}

func (s *Switch) setMulticastGroup(gid uint64, ports []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mcGroups[gid] = append([]uint64(nil), ports...)
}

// Checkpoint is a point-in-time copy of a switch's control-plane and
// flow state: runtime table entries, default-action overrides,
// multicast groups, and the full contents of every flowtable instance
// (entry state, TTL deadlines, sync marks). Dataplane register state is
// deliberately not captured — it belongs to the packets, not the
// controller.
type Checkpoint struct {
	tables   *sim.TablesSnapshot
	mcGroups map[uint64][]uint64
	flows    map[string]*flow.Snapshot
}

// Checkpoint snapshots the control-plane and flow state for a later
// Restore — the rollback mechanism behind the ctrlplane's transactional
// updates, and the state-transfer unit for standby bootstrap and ISSU
// cutover. Safe to call while packets are processed and entries
// installed.
func (s *Switch) Checkpoint() *Checkpoint {
	g := s.live()
	cp := &Checkpoint{tables: g.tables.Snapshot()}
	s.mu.Lock()
	cp.mcGroups = make(map[uint64][]uint64, len(s.mcGroups))
	for gid, ports := range s.mcGroups {
		cp.mcGroups[gid] = append([]uint64(nil), ports...)
	}
	s.mu.Unlock()
	for _, path := range s.FlowTablePaths() {
		if ft := s.flowTable(g, path); ft != nil {
			if cp.flows == nil {
				cp.flows = make(map[string]*flow.Snapshot)
			}
			cp.flows[path] = ft.Snapshot()
		}
	}
	return cp
}

// Restore reinstates a checkpoint, discarding every control-plane and
// flow-state change made since it was taken. Flowtable contents
// round-trip exactly — entry state, TTL deadlines, and sync marks are
// reinstated verbatim; paths the restoring switch's program does not
// declare are skipped. The checkpoint is not consumed and may be
// restored again.
func (s *Switch) Restore(cp *Checkpoint) {
	if cp == nil {
		return
	}
	g := s.live()
	g.tables.Restore(cp.tables)
	mc := make(map[uint64][]uint64, len(cp.mcGroups))
	for gid, ports := range cp.mcGroups {
		mc[gid] = append([]uint64(nil), ports...)
	}
	s.mu.Lock()
	s.mcGroups = mc
	s.mu.Unlock()
	for path, snap := range cp.flows {
		if ft := s.flowTable(g, path); ft != nil {
			ft.RestoreSnapshot(snap)
		}
	}
}

// mcPorts snapshots a multicast group's replication list.
func (s *Switch) mcPorts(gid uint64) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mcGroups[gid]
}

// Process runs one packet received on inPort through the dataplane,
// returning the packets transmitted (empty when dropped). Multicast
// replication and recirculation are resolved here, in the architecture
// — mirroring how µPA's logical externs map onto a target's PRE.
//
// Process never panics: engine panics are recovered into an
// *EngineFault (counted in metrics when enabled), and every error it
// returns belongs to the typed taxonomy — match with errors.As against
// *ParseError, *DeparseError, *TableError, *EngineFault, and
// *RecircBudgetError, or errors.Is against the sim.ErrParse ...
// sim.ErrRecirc class sentinels.
func (s *Switch) Process(pkt []byte, inPort uint64) ([]Output, error) {
	clock := s.clock.Add(1)
	if s.metrics != nil {
		s.metrics.Clock.Set(int64(clock))
	}
	outs, digests, err := s.processPacket(pkt, clock, inPort)
	if len(digests) > 0 {
		s.mu.Lock()
		s.digests = append(s.digests, digests...)
		s.mu.Unlock()
	}
	return outs, err
}

// outBuf is the pooled per-packet output state of the architecture
// loop: the transmitted packets, the byte buffers backing them (reused
// across packets once warm), and any digests the dataplane raised.
type outBuf struct {
	s       *Switch
	outs    []Output
	bufs    [][]byte // backing storage, parallel to outs
	digests []uint64
}

func (s *Switch) getOutBuf() *outBuf {
	ob, _ := s.obPool.Get().(*outBuf)
	if ob == nil {
		return &outBuf{s: s}
	}
	ob.outs = ob.outs[:0]
	ob.digests = ob.digests[:0]
	return ob
}

// add appends one transmitted packet, copying data into this buffer's
// pooled backing storage.
func (ob *outBuf) add(port uint64, data []byte) {
	i := len(ob.outs)
	var buf []byte
	if i < len(ob.bufs) {
		buf = append(ob.bufs[i][:0], data...)
		ob.bufs[i] = buf
	} else {
		buf = append([]byte(nil), data...)
		ob.bufs = append(ob.bufs, buf)
	}
	ob.outs = append(ob.outs, Output{Port: port, Data: buf})
}

// processPacket runs one packet (with its pre-assigned clock tick)
// through the architecture loop and returns freshly allocated outputs
// the caller owns. It is the Process-path wrapper over
// processPacketInto.
func (s *Switch) processPacket(pkt []byte, clock, inPort uint64) (outs []Output, digests []uint64, err error) {
	ob := s.getOutBuf()
	err = s.processPacketInto(ob, s.live(), pkt,
		sim.Metadata{InPort: inPort, InTimestamp: clock, PktLen: uint64(len(pkt))})
	if len(ob.outs) > 0 {
		outs = make([]Output, len(ob.outs))
		for i, o := range ob.outs {
			outs[i] = Output{Port: o.Port, Data: append([]byte(nil), o.Data...)}
		}
	}
	if len(ob.digests) > 0 {
		digests = append(digests, ob.digests...)
	}
	s.obPool.Put(ob)
	return outs, digests, err
}

// processPacketInto runs one packet through generation g's architecture
// loop and, when a shadow canary is active, mirrors the packet through
// the staged generation and compares the outcomes. The generation is
// loaded once per packet by the caller — a concurrent cutover is
// adopted only at the next packet boundary, never mid-recirculation.
func (s *Switch) processPacketInto(ob *outBuf, g *generation, pkt []byte, meta sim.Metadata) error {
	err := s.archLoop(ob, g, pkt, meta)
	if c := s.canary.Load(); c != nil {
		c.mirror(pkt, meta, ob, err)
	}
	return err
}

// archLoop runs one packet through the architecture loop — engine,
// multicast replication, recirculation — appending transmitted packets
// and digests to ob, without touching switch-wide digest or clock
// state. It is the engine-independent core shared by Process,
// ProcessBatch, and the canary's shadow path. On error ob's outputs are
// cleared but digests raised by earlier recirculation passes are kept,
// matching Process semantics.
func (s *Switch) archLoop(ob *outBuf, g *generation, pkt []byte, meta sim.Metadata) (err error) {
	defer func() {
		if r := recover(); r != nil {
			// Architecture-layer panic (the engines recover their own):
			// degrade to a typed fault, never a crash.
			ob.outs = ob.outs[:0]
			err = &sim.EngineFault{Engine: "switch", Reason: fmt.Sprint(r), PanicValue: r}
			if s.metrics != nil {
				s.metrics.EngineFaults.Inc()
			}
		}
	}()
	data := pkt
	for pass := 0; ; pass++ {
		res, perr := s.process(g, data, meta)
		if perr != nil {
			ob.outs = ob.outs[:0]
			return perr
		}
		ob.digests = append(ob.digests, res.Digests...)
		for i := 0; i < len(res.Out)-1; i++ {
			// Enqueued (non-final) packets come from the reference
			// interpreter's orchestration modules.
			ob.add(res.Out[i].Port, res.Out[i].Data)
		}
		var final *sim.OutPkt
		if !res.Dropped && len(res.Out) > 0 {
			final = &res.Out[len(res.Out)-1]
		}
		if final != nil && res.McastGroup != 0 {
			ports := s.mcPorts(res.McastGroup)
			for _, port := range ports {
				ob.add(port, final.Data)
			}
			if sp := meta.Span; sp != nil {
				// The engine saw a forward to the PRE; the architecture
				// resolved it into replication — the span reports the truth.
				sp.Disposition = "multicast"
				sp.OutPorts = append(sp.OutPorts[:0], ports...)
			}
			res.Release()
			return nil
		}
		if final != nil && res.Recirculate {
			if sp := meta.Span; sp != nil {
				sp.Recircs++
			}
			if pass >= s.MaxRecirculations {
				// The budget is an architecture drop: typed, and counted
				// against the drop counters alongside the recirculations
				// that led here.
				if s.metrics != nil {
					s.metrics.RecircDrops.Inc()
					s.metrics.Drops.Inc()
					s.metrics.Port(meta.InPort).Drops.Inc()
				}
				res.Release()
				ob.outs = ob.outs[:0]
				return &sim.RecircBudgetError{Limit: s.MaxRecirculations}
			}
			// Keep the state alive: data aliases its buffer across the
			// recirculation (bounded by MaxRecirculations, then GC'd).
			data = final.Data
			continue
		}
		if final != nil {
			ob.add(final.Port, final.Data)
		}
		res.Release()
		return nil
	}
}

// BatchResult is the outcome of one packet of a ProcessBatch call:
// exactly what Process would have returned for it. Its outputs are
// backed by pooled buffers owned by the switch — call Release once the
// result has been consumed to recycle them (optional: unreleased
// results are garbage-collected), after which the result and its packet
// data must not be used.
type BatchResult struct {
	Out []Output
	Err error
	ob  *outBuf
}

// Release returns the result's backing buffers to its switch's pool.
// Safe on the zero value, and idempotent.
func (r *BatchResult) Release() {
	if r.ob == nil {
		return
	}
	ob := r.ob
	r.ob = nil
	r.Out = nil
	ob.s.obPool.Put(ob)
}

// SetWorkers sets how many goroutines ProcessBatch may use (values
// below 2 select the serial path, the default). Per-packet engine state
// lives in per-worker pools and table lookups go through the same
// internally synchronized Tables state as Process, so worker mode is
// safe against concurrent control-plane updates. Safe to call between
// batches, and from other goroutines. The first parallel batch starts a
// persistent worker pool whose goroutines live for the life of the
// switch (parallel batches are serialized over it; serial batches and
// Process stay fully concurrent).
func (s *Switch) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers.Store(int32(n))
}

// batchChunk is the work-stealing granularity of parallel ProcessBatch:
// coarse enough to amortize the atomic claim, fine enough to balance
// skewed per-packet costs.
const batchChunk = 64

// workerPool is the persistent parallel-batch engine: n goroutines
// blocked on wake, a per-batch job described by the fields below, and
// atomic chunk claiming. Keeping the goroutines across batches (rather
// than spawning per batch) is what makes the parallel hot path
// allocation-free.
type workerPool struct {
	s    *Switch
	n    int
	wake chan struct{}
	done sync.WaitGroup

	mu sync.Mutex // serializes batches over the pool
	// Per-batch job state: written by run() before waking workers, read
	// by workers only after the channel receive (happens-before), and
	// cleared before run() returns.
	pkts    [][]byte
	results []BatchResult
	base    uint64
	inPort  uint64
	next    atomic.Int64
}

func newWorkerPool(s *Switch, n int) *workerPool {
	p := &workerPool{s: s, n: n, wake: make(chan struct{}, n)}
	for w := 0; w < n; w++ {
		go p.work(w)
	}
	return p
}

func (p *workerPool) work(w int) {
	for range p.wake {
		// Worker w counts into telemetry shard w (uncontended per-worker
		// series, folded back into the switch-wide metrics at scrape
		// time) and stages spans in its own trace buffer, published to
		// the shared ring once per batch.
		var m *sim.Metrics
		if p.s.metrics != nil {
			m = p.s.metrics.Shard(w)
		}
		var tb *trace.Buffer
		if rec := p.s.tracer.Load(); rec != nil {
			tb = trace.NewBuffer(rec)
		}
		n := len(p.pkts)
		for {
			hi := int(p.next.Add(batchChunk))
			lo := hi - batchChunk
			if lo >= n {
				break
			}
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				p.s.runBatchPacket(p.pkts, p.results, p.base, p.inPort, i, m, tb)
			}
		}
		tb.Flush()
		p.done.Done()
	}
}

func (p *workerPool) run(pkts [][]byte, results []BatchResult, base, inPort uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pkts, p.results, p.base, p.inPort = pkts, results, base, inPort
	p.next.Store(0)
	p.done.Add(p.n)
	for w := 0; w < p.n; w++ {
		p.wake <- struct{}{}
	}
	p.done.Wait()
	p.pkts, p.results = nil, nil
}

// getPool returns the switch's persistent worker pool, (re)building it
// when the requested width changed. An abandoned pool's goroutines
// drain their channel and exit.
func (s *Switch) getPool(workers int) *workerPool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wpool == nil || s.wpool.n != workers {
		if s.wpool != nil {
			close(s.wpool.wake)
		}
		s.wpool = newWorkerPool(s, workers)
	}
	return s.wpool
}

// runBatchPacket processes packet i of a batch into results[i],
// counting into telemetry shard m (nil = the switch-wide series) and
// staging a hop span in tb when tracing is on (nil = tracing off).
func (s *Switch) runBatchPacket(pkts [][]byte, results []BatchResult, base, inPort uint64, i int, m *sim.Metrics, tb *trace.Buffer) {
	ob := s.getOutBuf()
	meta := sim.Metadata{
		InPort:      inPort,
		InTimestamp: base + uint64(i) + 1,
		PktLen:      uint64(len(pkts[i])),
		M:           m,
	}
	var sp *trace.Span
	if tb != nil {
		// Batch packets are self-rooted traces: no network hands them a
		// context, so the span id doubles as the trace id.
		sid := tb.NextID()
		sp = &trace.Span{
			TraceID: sid, SpanID: sid, Kind: "hop", Name: "batch",
			Start: meta.InTimestamp, End: meta.InTimestamp,
			InPort: inPort, Hop: &sim.HopSpan{},
		}
		meta.Span = sp.Hop
	}
	err := s.processPacketInto(ob, s.live(), pkts[i], meta)
	if sp != nil {
		if err != nil {
			sp.Hop.Disposition = "error"
			sp.Hop.Err = err.Error()
		}
		tb.Add(sp)
	}
	results[i] = BatchResult{Out: ob.outs, Err: err, ob: ob}
}

// ProcessBatch runs a batch of packets, all received on inPort, through
// the dataplane, returning one BatchResult per packet in order. It is
// semantically identical to calling Process once per packet in slice
// order: clock ticks are pre-assigned per index, digests are published
// in packet order, and recirculation/multicast resolve per packet —
// whether the batch runs serially or (after SetWorkers(n>1)) sharded
// across the worker pool.
func (s *Switch) ProcessBatch(pkts [][]byte, inPort uint64) []BatchResult {
	return s.ProcessBatchInto(pkts, inPort, nil)
}

// ProcessBatchInto is ProcessBatch reusing a caller-provided results
// slice (when its capacity suffices). Together with BatchResult.Release
// it makes the steady-state batch path allocation-free: release every
// result of a batch before reusing the slice for the next one.
func (s *Switch) ProcessBatchInto(pkts [][]byte, inPort uint64, results []BatchResult) []BatchResult {
	n := len(pkts)
	if n == 0 {
		return nil
	}
	if cap(results) >= n {
		results = results[:n]
	} else {
		results = make([]BatchResult, n)
	}
	base := s.clock.Add(uint64(n)) - uint64(n)
	if workers := int(s.workers.Load()); workers > 1 {
		if workers > n {
			workers = n
		}
		s.getPool(workers).run(pkts, results, base, inPort)
	} else {
		var tb *trace.Buffer
		if rec := s.tracer.Load(); rec != nil {
			tb = trace.NewBuffer(rec)
		}
		for i := range pkts {
			s.runBatchPacket(pkts, results, base, inPort, i, nil, tb)
		}
		tb.Flush()
	}
	// Publish digests in packet order.
	var all []uint64
	for i := range results {
		if ob := results[i].ob; ob != nil && len(ob.digests) > 0 {
			all = append(all, ob.digests...)
		}
	}
	if len(all) > 0 {
		s.mu.Lock()
		s.digests = append(s.digests, all...)
		s.mu.Unlock()
	}
	if s.metrics != nil {
		s.metrics.Clock.Set(int64(base + uint64(n)))
	}
	return results
}

func (s *Switch) process(g *generation, pkt []byte, meta sim.Metadata) (*sim.ProcResult, error) {
	if s.engine == EngineReference {
		return g.interp.Process(pkt, meta)
	}
	if g.exec == nil {
		return nil, &sim.EngineFault{Engine: "compiled",
			Reason: fmt.Sprintf("engine unavailable: %v (use EngineReference)", g.dp.res.ComposeErr)}
	}
	return g.exec.Process(pkt, meta)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TraceEvent mirrors the simulator's trace event for the public API.
// Seq is a monotonic per-switch sequence number; Module is the instance
// path of the emitting module ("" = the main program), so traces from
// composed programs (§4) attribute every event to its module.
type TraceEvent struct {
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Module string `json:"module,omitempty"`
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
}

func wrapEvent(e sim.TraceEvent) TraceEvent {
	return TraceEvent{Seq: e.Seq, Kind: e.Kind, Module: e.Module, Name: e.Name, Detail: e.Detail}
}

// SetTracer installs a debugging tracer (§8.2): fn receives one event
// per parser state, module application, and table lookup. Pass nil to
// disable. SetTracer manages a single sink; use Subscribe to attach
// additional independent sinks.
func (s *Switch) SetTracer(fn func(TraceEvent)) {
	if s.traceOff != nil {
		s.traceOff()
		s.traceOff = nil
	}
	if fn == nil {
		return
	}
	s.traceOff = s.Subscribe(fn)
}

// Subscribe attaches one sink to the switch's trace event bus — both
// engines publish to it with a shared sequence numbering — and returns
// a detach function. Any number of sinks may be attached; when none
// are, tracing costs one atomic load per potential event.
func (s *Switch) Subscribe(fn func(TraceEvent)) (cancel func()) {
	return s.bus.Subscribe(func(e sim.TraceEvent) { fn(wrapEvent(e)) })
}

// EnableMetrics attaches dataplane observability — per-port and
// per-table counters, error counters, and a latency histogram — to the
// switch and returns the registry they are exposed through (serve it
// with obs.NewHandler, or encode it with WritePrometheus/WriteJSON).
// Idempotent; the first call allocates the registry. Before the first
// call the packet path carries no instrumentation beyond a nil check.
func (s *Switch) EnableMetrics() *obs.Registry {
	if s.metrics == nil {
		s.metrics = sim.NewMetrics(obs.NewRegistry())
		s.attachMetrics(s.live())
	}
	return s.metrics.Registry()
}

// SetLatencySampleEvery tunes the latency histogram's sampling period:
// every nth packet is timed (default 1 — every packet; see
// sim.Metrics.SampleEvery). Counters are unaffected. No-op before
// EnableMetrics.
func (s *Switch) SetLatencySampleEvery(n int64) {
	if s.metrics != nil {
		s.metrics.SampleEvery.Store(n)
	}
}

// Metrics returns the registry attached by EnableMetrics, or nil when
// metrics are disabled.
func (s *Switch) Metrics() *obs.Registry {
	if s.metrics == nil {
		return nil
	}
	return s.metrics.Registry()
}
