# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make bench` re-records the throughput
# baseline BENCH_5.json that `make bench-check` (and CI) gates against.

GO ?= go

.PHONY: all build test race bench bench-check fuzz verify-paths

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/obs/... ./internal/trace/... ./internal/netsim/... ./internal/ctrlplane/... ./internal/flow/... .

# bench measures the packet-throughput trajectory (P1-P9, both engines,
# serial/batch/parallel) and rewrites the committed baseline.
bench:
	$(GO) run ./cmd/up4bench -perf -perf-dur 300ms -perf-out BENCH_5.json

# bench-check re-measures quickly and fails on a >3x ns/packet
# regression against the committed baseline (serial modes only).
bench-check:
	$(GO) test -run TestBenchRegression -v .

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzProcess -fuzztime 20s .

# verify-paths runs the mechanized path-coverage equivalence check over
# P1-P8: every enumerated parser path and control-site outcome gets a
# concrete witness executed on three engines, which must agree
# byte-for-byte (see DESIGN.md "Mechanized equivalence").
verify-paths:
	$(GO) run ./cmd/up4c -verify-paths
