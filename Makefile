# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make bench` re-records the throughput
# baseline BENCH_5.json that `make bench-check` (and CI) gates against.

GO ?= go

.PHONY: all build test race bench bench-check fuzz upgrade-smoke verify-paths

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/obs/... ./internal/trace/... ./internal/netsim/... ./internal/ctrlplane/... ./internal/flow/... ./internal/issu/... .

# bench measures the packet-throughput trajectory (P1-P11, both engines,
# serial/batch/parallel) and rewrites the committed baseline.
bench:
	$(GO) run ./cmd/up4bench -perf -perf-dur 300ms -perf-out BENCH_5.json

# bench-check re-measures quickly and fails on a >3x ns/packet
# regression against the committed baseline (serial modes only).
bench-check:
	$(GO) test -run TestBenchRegression -v .

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzProcess -fuzztime 20s .

# upgrade-smoke performs an in-service P9 -> P9v2 upgrade (stage, shadow
# canary, cutover) over 10% drop links end to end.
upgrade-smoke:
	$(GO) run ./cmd/up4run -upgrade P9,up4/p9_fw_v2.up4 -seed 7 -chaos-drop 0.1 -chaos-dup 0.05 -chaos-reorder 0.05

# verify-paths runs the mechanized path-coverage equivalence check over
# P1-P8: every enumerated parser path and control-site outcome gets a
# concrete witness executed on three engines, which must agree
# byte-for-byte (see DESIGN.md "Mechanized equivalence").
verify-paths:
	$(GO) run ./cmd/up4c -verify-paths
