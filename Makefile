# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make bench` re-records the throughput
# baseline BENCH_5.json that `make bench-check` (and CI) gates against.

GO ?= go

.PHONY: all build test race bench bench-check fuzz

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/obs/... ./internal/netsim/... ./internal/ctrlplane/... .

# bench measures the packet-throughput trajectory (P1-P7, both engines,
# serial/batch/parallel) and rewrites the committed baseline.
bench:
	$(GO) run ./cmd/up4bench -perf -perf-dur 300ms -perf-out BENCH_5.json

# bench-check re-measures quickly and fails on a >3x ns/packet
# regression against the committed baseline (serial modes only).
bench-check:
	$(GO) test -run TestBenchRegression -v .

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzProcess -fuzztime 20s .
