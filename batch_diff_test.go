package microp4_test

// Differential campaign for the batched ingress (PR 5): ProcessBatch —
// serial (one worker) and parallel (sharded worker pool) — must be
// output-identical, error-identical, digest-identical, and (latency
// histogram aside) metrics-identical to a plain Process loop over the
// same packets. Covers the P4 routing mix, recirculation (including
// budget exhaustion), multicast replication, and stateful digests.

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/perf"
	"microp4/internal/pkt"
)

// batchTraffic builds a deterministic mixed workload: routable IPv4,
// routable IPv6, unroutable IPv4, non-IP ethertypes, and truncated
// garbage, interleaved by a seeded LCG.
func batchTraffic(n int) [][]byte {
	v4 := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 0xC0A80002, Dst: lib.NetA | 1}).
		TCP(1234, 80).Payload([]byte("v4")).Bytes()
	v6 := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv6).
		IPv6(pkt.IPv6Opts{NextHdr: 59, HopLimit: 9, DstHi: lib.NetV6Hi, DstLo: 1}).
		Payload([]byte("v6")).Bytes()
	unroutable := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 17, Src: 1, Dst: 0xDEADBEEF}).
		UDP(1, 2, 8).Bytes()
	arp := pkt.NewBuilder().Ethernet(lib.DmacA, 2, 0x0806).Payload([]byte{1, 2, 3, 4}).Bytes()
	shapes := [][]byte{v4, v6, unroutable, arp, {0xFF}, {}, v4[:10]}
	out := make([][]byte, n)
	state := uint64(42)
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		out[i] = shapes[state>>33%uint64(len(shapes))]
	}
	return out
}

// exposition returns the switch's metrics exposition with the latency
// histogram removed: with every packet timed, bucket placement depends
// on wall-clock durations, which no two runs share.
func exposition(t *testing.T, sw *microp4.Switch) string {
	t.Helper()
	var buf bytes.Buffer
	if err := sw.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "up4_packet_latency_ns") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// runSerial drives packets one at a time through Process, mirroring
// ProcessBatch's result shape; digests are drained after each packet so
// their order reflects packet order.
func runSerial(sw *microp4.Switch, pkts [][]byte, inPort uint64) ([]microp4.BatchResult, []uint64) {
	results := make([]microp4.BatchResult, len(pkts))
	var digests []uint64
	for i, p := range pkts {
		out, err := sw.Process(p, inPort)
		results[i] = microp4.BatchResult{Out: out, Err: err}
		digests = append(digests, sw.Digests()...)
	}
	return results, digests
}

// diffResults compares per-packet outcomes of two runs.
func diffResults(t *testing.T, label string, want, got []microp4.BatchResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if (w.Err == nil) != (g.Err == nil) ||
			(w.Err != nil && w.Err.Error() != g.Err.Error()) {
			t.Errorf("%s pkt %d: err %v, want %v", label, i, g.Err, w.Err)
			continue
		}
		if len(w.Out) != len(g.Out) {
			t.Errorf("%s pkt %d: %d outputs, want %d", label, i, len(g.Out), len(w.Out))
			continue
		}
		for j := range w.Out {
			if w.Out[j].Port != g.Out[j].Port || !bytes.Equal(w.Out[j].Data, g.Out[j].Data) {
				t.Errorf("%s pkt %d out %d: port %d data %x, want port %d data %x",
					label, i, j, g.Out[j].Port, g.Out[j].Data, w.Out[j].Port, w.Out[j].Data)
			}
		}
	}
}

// TestBatchDiffP4 proves ProcessBatch (one worker and four) is
// packet-for-packet and metric-for-metric identical to serial Process
// on the P4 routing mix, for both engines.
func TestBatchDiffP4(t *testing.T) {
	traffic := batchTraffic(128)
	newSwitch := func() *microp4.Switch {
		sw, err := perf.Switch("P4")
		if err != nil {
			t.Fatal(err)
		}
		sw.EnableMetrics()
		return sw
	}
	ref := newSwitch()
	want, wantDigests := runSerial(ref, traffic, 1)
	wantMetrics := exposition(t, ref)

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sw := newSwitch()
			sw.SetWorkers(workers)
			got := sw.ProcessBatch(traffic, 1)
			diffResults(t, "batch", want, got)
			if d := sw.Digests(); len(d) != len(wantDigests) {
				t.Errorf("digests = %v, want %v", d, wantDigests)
			}
			if m := exposition(t, sw); m != wantMetrics {
				t.Errorf("metrics diverge from serial run:\n got:\n%s\nwant:\n%s", m, wantMetrics)
			}
		})
	}
}

// TestBatchDiffRecirc exercises recirculation inside a batch: looping
// packets, packets that exceed the budget (typed error at the right
// index), and straight-through packets, identical under 1 and 4
// workers.
func TestBatchDiffRecirc(t *testing.T) {
	main, err := microp4.CompileModule("loop.up4", recircSrc)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := microp4.Build(main)
	if err != nil {
		t.Fatal(err)
	}
	traffic := [][]byte{
		{3, 0xAB, 0xCD},  // three recirculations, then out
		{0, 0x01, 0x02},  // straight through
		{200, 0x11, 0x22}, // exceeds the budget: typed error
		{1, 0x33, 0x44},
		{4, 0x55, 0x66}, // budget is 4: exactly at the limit
	}
	ref := dp.NewSwitch()
	want, _ := runSerial(ref, traffic, 1)
	if want[2].Err == nil {
		t.Fatal("budget-exceeding packet did not error serially")
	}
	var rbe *microp4.RecircBudgetError
	if !errors.As(want[2].Err, &rbe) {
		t.Fatalf("budget error has type %T, want *RecircBudgetError", want[2].Err)
	}
	for _, workers := range []int{1, 4} {
		sw := dp.NewSwitch()
		sw.SetWorkers(workers)
		got := sw.ProcessBatch(traffic, 1)
		diffResults(t, fmt.Sprintf("workers=%d", workers), want, got)
		if !errors.As(got[2].Err, &rbe) {
			t.Errorf("workers=%d: budget error has type %T", workers, got[2].Err)
		}
	}
}

// TestBatchDiffMulticast proves replication order and replica bytes
// survive batching: every batched packet floods to the same ports with
// the same data as its serial twin.
func TestBatchDiffMulticast(t *testing.T) {
	main, err := microp4.CompileModule("flood.up4", multicastSrc)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := microp4.Build(main)
	if err != nil {
		t.Fatal(err)
	}
	traffic := make([][]byte, 32)
	for i := range traffic {
		traffic[i] = pkt.NewBuilder().Ethernet(0xFFFFFFFFFFFF, uint64(i), 0x0800).
			Payload([]byte{byte(i)}).Bytes()
	}
	ref := dp.NewSwitch()
	ref.SetMulticastGroup(1, 2, 3, 4)
	want, _ := runSerial(ref, traffic, 9)
	for _, workers := range []int{1, 4} {
		sw := dp.NewSwitch()
		sw.SetMulticastGroup(1, 2, 3, 4)
		sw.SetWorkers(workers)
		got := sw.ProcessBatch(traffic, 9)
		diffResults(t, fmt.Sprintf("workers=%d", workers), want, got)
	}
}

// TestBatchDiffDigests proves digest order through a single-worker
// batch matches the serial run exactly on the stateful FlowCount
// program (register state makes packet order observable).
func TestBatchDiffDigests(t *testing.T) {
	fcSrc, err := lib.ModuleSource("FlowCount")
	if err != nil {
		t.Fatal(err)
	}
	fc, err := microp4.CompileModule("flowcount.up4", fcSrc)
	if err != nil {
		t.Fatal(err)
	}
	main, err := microp4.CompileModule("counter.up4", statefulTestMain)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := microp4.Build(main, fc)
	if err != nil {
		t.Fatal(err)
	}
	traffic := make([][]byte, 12)
	for i := range traffic {
		// Three distinct flows, each crossing the threshold once.
		traffic[i] = pkt.NewBuilder().Ethernet(1, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 5, Protocol: 17, Src: 0x01020300 + uint32(i%3), Dst: 9}).
			UDP(1, 2, 8).Bytes()
	}
	ref := dp.NewSwitch()
	want, wantDigests := runSerial(ref, traffic, 3)
	if len(wantDigests) != 3 {
		t.Fatalf("serial run produced %d digests, want 3", len(wantDigests))
	}
	sw := dp.NewSwitch()
	sw.SetWorkers(1)
	got := sw.ProcessBatch(traffic, 3)
	diffResults(t, "batch", want, got)
	gotDigests := sw.Digests()
	if len(gotDigests) != len(wantDigests) {
		t.Fatalf("digests = %v, want %v", gotDigests, wantDigests)
	}
	for i := range wantDigests {
		if gotDigests[i] != wantDigests[i] {
			t.Errorf("digest %d = %#x, want %#x", i, gotDigests[i], wantDigests[i])
		}
	}
	for i := 0; i < 3; i++ {
		w, _ := ref.ReadRegister("fc_i.counters", i)
		g, err := sw.ReadRegister("fc_i.counters", i)
		if err != nil {
			t.Fatal(err)
		}
		if w != g {
			t.Errorf("counters[%d] = %d, want %d", i, g, w)
		}
	}
}

// TestBatchParallelDeterminism runs the same parallel batch twice; with
// a stateless program the outputs must be bit-identical run to run.
func TestBatchParallelDeterminism(t *testing.T) {
	traffic := batchTraffic(96)
	run := func() []microp4.BatchResult {
		sw, err := perf.Switch("P4")
		if err != nil {
			t.Fatal(err)
		}
		sw.SetWorkers(4)
		return sw.ProcessBatch(traffic, 1)
	}
	first := run()
	second := run()
	diffResults(t, "rerun", first, second)
}

// TestBatchDiffReferenceEngine proves the batch path is engine-agnostic:
// the reference interpreter under ProcessBatch matches its own serial
// run.
func TestBatchDiffReferenceEngine(t *testing.T) {
	dp := compileLib(t, "P4")
	traffic := batchTraffic(48)
	install := func(sw *microp4.Switch) {
		sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
			[]microp4.Key{microp4.LPM(lib.NetA, 8)}, "l3_i.ipv4_i.process", 100)
		sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(100)}, "forward", 1, 2, 3)
	}
	ref := dp.NewSwitchWith(microp4.EngineReference)
	install(ref)
	want, _ := runSerial(ref, traffic, 1)
	sw := dp.NewSwitchWith(microp4.EngineReference)
	install(sw)
	sw.SetWorkers(4)
	got := sw.ProcessBatch(traffic, 1)
	diffResults(t, "reference", want, got)
}
