package microp4_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"microp4"
	"microp4/internal/flow"
	"microp4/internal/lib"
	"microp4/internal/perf"
	"microp4/internal/pkt"
)

// Generation-layer tests: the Checkpoint/Restore flow round-trip that
// standby promotion and ISSU cutover lean on, the 4-worker batch racing
// a cutover (the -race gate for atomic generation adoption), and the
// zero-alloc pin with generations staged and adopted.

// buildV2 compiles the P9 v2 program (optionally with the buggy
// allow-drops mutation) against the standard library modules.
func buildV2(t testing.TB, buggy bool) *microp4.Dataplane {
	t.Helper()
	src, err := lib.Source("up4/p9_fw_v2.up4")
	if err != nil {
		t.Fatal(err)
	}
	if buggy {
		mutated := strings.Replace(src, "action allow() { }", "action allow() { im.drop(); }", 1)
		if mutated == src {
			t.Fatal("buggy mutation found nothing to replace")
		}
		src = mutated
	}
	main, err := microp4.CompileModule("p9_fw_v2.up4", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lib.Program("P9")
	if err != nil {
		t.Fatal(err)
	}
	var mods []*microp4.Module
	for _, name := range m.Modules {
		msrc, err := lib.ModuleSource(name)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := microp4.CompileModule(name+".up4", msrc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mods = append(mods, mod)
	}
	dp, err := microp4.Build(main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

func genFwd(i int) []byte {
	return pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP,
			Src: uint32(lib.NetA) | uint32(i+1), Dst: uint32(lib.NetB) | uint32(i+1)}).
		TCP(uint16(1000+i), 443).Payload([]byte("syn")).Bytes()
}

func genRev(i int) []byte {
	return pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP,
			Src: uint32(lib.NetB) | uint32(i+1), Dst: uint32(lib.NetA) | uint32(i+1)}).
		TCP(443, uint16(1000+i)).Payload([]byte("ack")).Bytes()
}

func genKey(i int) flow.Key {
	return flow.Key{SrcAddr: lib.NetA | uint64(i+1), DstAddr: lib.NetB | uint64(i+1),
		Proto: 6, SrcPort: uint64(1000 + i), DstPort: 443}
}

// establishFlows churns n flows to established on sw.
func establishFlows(t testing.TB, sw *microp4.Switch, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := sw.Process(genFwd(i), lib.PortA); err != nil {
			t.Fatal(err)
		}
		if _, err := sw.Process(genRev(i), lib.PortB); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointRestoreFlowRoundTrip is the satellite-1 regression: a
// checkpoint carries the flowtable verbatim — entry order, states, TTL
// deadlines, sync marks — both back onto the source switch (rollback)
// and onto a fresh switch (standby bootstrap), and the restored state
// behaves identically, not just compares identically.
func TestCheckpointRestoreFlowRoundTrip(t *testing.T) {
	sw, err := perf.Switch("P9")
	if err != nil {
		t.Fatal(err)
	}
	const flows = 8
	// Half established, half still new, a few synced: every per-entry
	// property in play.
	for i := 0; i < flows; i++ {
		if _, err := sw.Process(genFwd(i), lib.PortA); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < flows/2; i++ {
		if _, err := sw.Process(genRev(i), lib.PortB); err != nil {
			t.Fatal(err)
		}
	}
	tbl := sw.FlowTable("fs_i.conn")
	if tbl == nil {
		t.Fatal("no fs_i.conn flow table")
	}
	tbl.MarkSynced(genKey(0))
	tbl.MarkSynced(genKey(5))
	want := tbl.Entries()

	cp := sw.Checkpoint()

	// Mutate past the checkpoint: new flows, a deletion, a state flip.
	for i := flows; i < flows+4; i++ {
		if _, err := sw.Process(genFwd(i), lib.PortA); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Delete(genKey(1))
	if _, err := sw.Process(genRev(6), lib.PortB); err != nil {
		t.Fatal(err)
	}

	// Rollback: the source switch returns to the checkpoint exactly.
	sw.Restore(cp)
	if got := tbl.Entries(); fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("restore did not round-trip on the source:\nwant %+v\n got %+v", want, got)
	}

	// Bootstrap: a fresh switch restored from the same checkpoint holds
	// the same entries (the checkpoint is reusable) and behaves the
	// same — an established flow's return packet forwards, an unknown
	// flow's return packet is dropped by policy on both.
	sw2, err := perf.Switch("P9")
	if err != nil {
		t.Fatal(err)
	}
	sw2.Restore(cp)
	tbl2 := sw2.FlowTable("fs_i.conn")
	if got := tbl2.Entries(); fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("restore did not round-trip onto a fresh switch:\nwant %+v\n got %+v", want, got)
	}
	for _, probe := range []struct {
		name string
		data []byte
	}{
		{"established-return", genRev(0)},
		{"unknown-return", genRev(flows + 7)},
	} {
		a, errA := sw.Process(probe.data, lib.PortB)
		b, errB := sw2.Process(probe.data, lib.PortB)
		if (errA == nil) != (errB == nil) || fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Errorf("%s: source and bootstrapped switch disagree: %+v/%v vs %+v/%v",
				probe.name, a, errA, b, errB)
		}
	}
}

// outSig fingerprints one packet's outputs.
func outSig(outs []microp4.Output) string {
	var b strings.Builder
	for _, o := range outs {
		fmt.Fprintf(&b, "%d %x;", o.Port, o.Data)
	}
	return b.String()
}

// TestConcurrentCutoverRace is the satellite -race gate: a 4-worker
// ProcessBatch races CutOver to a generation with visibly different
// behavior (v2 mutated so allow drops). Adoption happens only at packet
// boundaries, so every packet's output must be byte-identical to either
// the serial old-generation run or the serial new-generation run —
// never a torn hybrid — and once the batch after the cutover runs,
// everything is pure new-generation.
func TestConcurrentCutoverRace(t *testing.T) {
	const flows = 16
	const batchLen = 256
	setup := func() *microp4.Switch {
		sw, err := perf.Switch("P9")
		if err != nil {
			t.Fatal(err)
		}
		establishFlows(t, sw, flows)
		return sw
	}
	// Return packets of established flows only: refreshes, no learns,
	// so each packet's output is independent of batch interleaving.
	batch := make([][]byte, batchLen)
	for i := range batch {
		batch[i] = genRev(i % flows)
	}

	// Serial references. Old generation forwards every packet; the
	// mutated new generation drops every packet.
	oldRefSw := setup()
	var oldRef, newRef []string
	for _, p := range batch {
		outs, err := oldRefSw.Process(p, lib.PortB)
		if err != nil {
			t.Fatal(err)
		}
		oldRef = append(oldRef, outSig(outs))
	}
	newRefSw := setup()
	if _, err := newRefSw.StageGeneration(buildV2(t, true)); err != nil {
		t.Fatal(err)
	}
	if _, err := newRefSw.CutOver(); err != nil {
		t.Fatal(err)
	}
	for _, p := range batch {
		outs, err := newRefSw.Process(p, lib.PortB)
		if err != nil {
			t.Fatal(err)
		}
		newRef = append(newRef, outSig(outs))
	}
	if oldRef[0] == newRef[0] {
		t.Fatal("old and new generations are indistinguishable — the race test is blind")
	}

	// Serial pre/post-cutover split: with one worker and the cutover
	// between two half-batches, the outputs are exactly old-then-new.
	splitSw := setup()
	if _, err := splitSw.StageGeneration(buildV2(t, true)); err != nil {
		t.Fatal(err)
	}
	half := batchLen / 2
	for i, res := range splitSw.ProcessBatch(batch[:half], lib.PortB) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if outSig(res.Out) != oldRef[i] {
			t.Fatalf("pre-cutover packet %d not old-generation output", i)
		}
	}
	if _, err := splitSw.CutOver(); err != nil {
		t.Fatal(err)
	}
	for i, res := range splitSw.ProcessBatch(batch[half:], lib.PortB) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if outSig(res.Out) != newRef[half+i] {
			t.Fatalf("post-cutover packet %d not new-generation output", half+i)
		}
	}

	// The race: 4 workers churn the batch while CutOver swings the
	// generation pointer from another goroutine.
	raceSw := setup()
	if _, err := raceSw.StageGeneration(buildV2(t, true)); err != nil {
		t.Fatal(err)
	}
	raceSw.SetWorkers(4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := raceSw.CutOver(); err != nil {
			t.Error(err)
		}
	}()
	results := raceSw.ProcessBatch(batch, lib.PortB)
	wg.Wait()
	for i, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		sig := outSig(res.Out)
		if sig != oldRef[i] && sig != newRef[i] {
			t.Fatalf("packet %d output is neither generation's serial output:\n got %s\n old %s\n new %s",
				i, sig, oldRef[i], newRef[i])
		}
	}
	if g := raceSw.Generation(); g != 2 {
		t.Fatalf("generation %d after the racing cutover, want 2", g)
	}
	// Post-race batches are pure new generation.
	for i, res := range raceSw.ProcessBatch(batch, lib.PortB) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if outSig(res.Out) != newRef[i] {
			t.Fatalf("post-race packet %d not new-generation output", i)
		}
	}
}

// TestGenerationHotPathNoAlloc extends the zero-alloc pin to the
// generation layer: with a generation merely staged (canary off, one
// extra atomic load on the path) and again after it is adopted, the
// batch hot path still allocates nothing per packet.
func TestGenerationHotPathNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomly drops sync.Pool items, so pooling cannot be exact")
	}
	sw, err := perf.Switch("P9")
	if err != nil {
		t.Fatal(err)
	}
	establishFlows(t, sw, 16)
	batch := make([][]byte, 256)
	for i := range batch {
		batch[i] = genRev(i % 16)
	}
	measure := func(label string) {
		t.Helper()
		var results []microp4.BatchResult
		var procErr error
		runBatch := func() {
			results = sw.ProcessBatchInto(batch, lib.PortB, results)
			for i := range results {
				if results[i].Err != nil {
					procErr = results[i].Err
				}
				results[i].Release()
			}
		}
		for i := 0; i < 4; i++ {
			runBatch()
		}
		allocs := testing.AllocsPerRun(50, runBatch)
		if procErr != nil {
			t.Fatalf("%s: %v", label, procErr)
		}
		if perPkt := allocs / float64(len(batch)); perPkt != 0 {
			t.Errorf("%s: %v allocs per batch (%.3f/pkt), want 0", label, allocs, perPkt)
		}
	}
	if _, err := sw.StageGeneration(buildV2(t, false)); err != nil {
		t.Fatal(err)
	}
	measure("staged")
	if _, err := sw.CutOver(); err != nil {
		t.Fatal(err)
	}
	if sw.StagedGeneration() != 0 || sw.Generation() != 2 {
		t.Fatal("cutover did not adopt the staged generation")
	}
	measure("adopted")
}
