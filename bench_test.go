package microp4_test

// Benchmark harness: one benchmark per evaluation artifact of the paper.
//
//	BenchmarkTable1Compose    — compile+link+compose each of P1..P9
//	BenchmarkTable2PHV        — PHV allocation, composed vs monolithic
//	BenchmarkTable3Stages     — MAU stage scheduling, both paths
//	BenchmarkFigure9Analysis  — the §5.2 static analysis
//	BenchmarkFigure10ParserMAT— the §5.3 parser→MAT transformation
//	BenchmarkFigure13Slicing  — the §5.4/§C PDG slicing and PPS
//	BenchmarkSwitch           — packet throughput of the behavioral
//	                            target, compiled vs reference engine
//
// Run everything with:
//
//	go test -bench=. -benchmem ./...

import (
	"testing"

	"microp4"
	"microp4/internal/analysis"
	"microp4/internal/backend/tna"
	"microp4/internal/eval"
	"microp4/internal/frontend"
	"microp4/internal/lib"
	"microp4/internal/linker"
	"microp4/internal/mat"
	"microp4/internal/midend"
	"microp4/internal/obs"
	"microp4/internal/pdg"
	"microp4/internal/perf"
	"microp4/internal/sim"
)

var programNames = []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7"}

// BenchmarkTable1Compose measures the full µP4C pipeline — frontend,
// linking, §C transformations, static analysis, homogenization — for
// every composed program of Table 1.
func BenchmarkTable1Compose(b *testing.B) {
	for _, name := range programNames {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				main, mods, err := lib.CompileProgram(name)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := midend.Build(main, mods...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2PHV measures the Tofino PHV allocation of both paths
// and reports the Table 2 metrics as benchmark outputs.
func BenchmarkTable2PHV(b *testing.B) {
	opts := tna.DefaultOptions()
	for _, name := range programNames {
		main, mods, err := lib.CompileProgram(name)
		if err != nil {
			b.Fatal(err)
		}
		res, err := midend.Build(main, mods...)
		if err != nil {
			b.Fatal(err)
		}
		mono, err := lib.CompileMonolithic(name)
		if err != nil {
			b.Fatal(err)
		}
		tmono, err := midend.Transform(mono)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/composed", func(b *testing.B) {
			var rep *tna.Report
			for i := 0; i < b.N; i++ {
				rep, err = tna.CompileComposed(res.Pipeline, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Used8), "phv8")
			b.ReportMetric(float64(rep.Used16), "phv16")
			b.ReportMetric(float64(rep.Used32), "phv32")
			b.ReportMetric(float64(rep.Bits), "phvbits")
		})
		b.Run(name+"/monolithic", func(b *testing.B) {
			var rep *tna.Report
			for i := 0; i < b.N; i++ {
				rep, err = tna.CompileMonolithic(tmono, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			if rep.Feasible {
				b.ReportMetric(float64(rep.Used8), "phv8")
				b.ReportMetric(float64(rep.Used16), "phv16")
				b.ReportMetric(float64(rep.Used32), "phv32")
				b.ReportMetric(float64(rep.Bits), "phvbits")
			} else {
				b.ReportMetric(1, "compile_failed")
			}
		})
	}
}

// BenchmarkTable3Stages reports the MAU stage counts of both paths as
// benchmark metrics (the Table 3 rows).
func BenchmarkTable3Stages(b *testing.B) {
	var pairs []eval.ResourcePair
	var err error
	for i := 0; i < b.N; i++ {
		pairs, err = eval.CompileAll()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pairs {
		if p.Composed.Feasible {
			b.ReportMetric(float64(p.Composed.Stages), p.Program+"_up4_stages")
		}
		if p.Mono.Feasible {
			b.ReportMetric(float64(p.Mono.Stages), p.Program+"_mono_stages")
		}
	}
}

// BenchmarkFigure9Analysis measures the §5.2 static analysis on the
// paper's worked example and asserts its numbers.
func BenchmarkFigure9Analysis(b *testing.B) {
	c1, err := frontend.CompileModule("c1.up4", eval.Fig9Callee1)
	if err != nil {
		b.Fatal(err)
	}
	c2, err := frontend.CompileModule("c2.up4", eval.Fig9Callee2)
	if err != nil {
		b.Fatal(err)
	}
	caller, err := frontend.CompileModule("caller.up4", eval.Fig9Caller)
	if err != nil {
		b.Fatal(err)
	}
	l, err := linker.Link(caller, c1, c2)
	if err != nil {
		b.Fatal(err)
	}
	var res *analysis.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = analysis.Analyze(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Main().El != 78 || res.Main().Bs != 98 {
		b.Fatalf("figure 9: El=%d Bs=%d, want 78/98", res.Main().El, res.Main().Bs)
	}
	b.ReportMetric(float64(res.Main().El), "El_bytes")
	b.ReportMetric(float64(res.Main().Bs), "Bs_bytes")
}

// BenchmarkFigure10ParserMAT measures the parser→MAT homogenization of
// the Fig. 10 parser.
func BenchmarkFigure10ParserMAT(b *testing.B) {
	main, err := frontend.CompileModule("fig10.up4", eval.Fig10Src)
	if err != nil {
		b.Fatal(err)
	}
	var res *midend.Result
	for i := 0; i < b.N; i++ {
		res, err = midend.Build(main)
		if err != nil {
			b.Fatal(err)
		}
	}
	tbl := res.Pipeline.Tables["$parser_tbl"]
	b.ReportMetric(float64(len(tbl.Entries)), "entries")
	b.ReportMetric(float64(len(tbl.Keys)), "keys")
}

// BenchmarkFigure13Slicing measures PDG construction, packet slicing,
// and PPS assembly on the §C example.
func BenchmarkFigure13Slicing(b *testing.B) {
	p, err := frontend.CompileModule("fig13.up4", eval.Fig13Src)
	if err != nil {
		b.Fatal(err)
	}
	var pps *pdg.PPS
	for i := 0; i < b.N; i++ {
		g := pdg.Build(p)
		pps, err = g.BuildPPS()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pps.Threads)), "threads")
}

// buildBenchEngines prepares both engines with installed rules.
func buildBenchEngines(tb testing.TB, prog string) (*sim.Exec, *sim.Interp, [][]byte) {
	exec, interp, err := perf.Engines(prog)
	if err != nil {
		tb.Fatal(err)
	}
	return exec, interp, perf.Traffic()
}

// BenchmarkSwitch measures per-packet processing cost of the behavioral
// target: the compiled MAT pipeline vs the reference interpreter.
func BenchmarkSwitch(b *testing.B) {
	for _, prog := range []string{"P1", "P4", "P7"} {
		exec, interp, traffic := buildBenchEngines(b, prog)
		meta := sim.Metadata{InPort: 1}
		b.Run(prog+"/compiled", func(b *testing.B) {
			b.SetBytes(int64(len(traffic[0])))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := exec.Process(traffic[i%len(traffic)], meta)
				if err != nil {
					b.Fatal(err)
				}
				res.Release()
			}
		})
		b.Run(prog+"/reference", func(b *testing.B) {
			b.SetBytes(int64(len(traffic[0])))
			for i := 0; i < b.N; i++ {
				if _, err := interp.Process(traffic[i%len(traffic)], meta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipeline compares the compiled engine's per-packet cost with
// observability compiled in but disabled ("off", the default state: no
// metrics, no trace sinks) against fully enabled ("on"). The "off"
// variant is the DESIGN.md zero-overhead invariant: it must allocate
// nothing on the hot path and stay within noise of the pre-obs seed.
func BenchmarkPipeline(b *testing.B) {
	meta := sim.Metadata{InPort: 1}
	b.Run("obs-off", func(b *testing.B) {
		exec, _, traffic := buildBenchEngines(b, "P4")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := exec.Process(traffic[i%len(traffic)], meta)
			if err != nil {
				b.Fatal(err)
			}
			res.Release()
		}
	})
	b.Run("obs-on", func(b *testing.B) {
		exec, _, traffic := buildBenchEngines(b, "P4")
		exec.SetMetrics(sim.NewMetrics(obs.NewRegistry()))
		var events int
		exec.Bus().Subscribe(func(sim.TraceEvent) { events++ })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := exec.Process(traffic[i%len(traffic)], meta)
			if err != nil {
				b.Fatal(err)
			}
			res.Release()
		}
	})
}

// BenchmarkProcessBatch measures the public Switch's batched ingress:
// one packet at a time (serial), ProcessBatch with one worker, and
// ProcessBatch with a sharded worker pool. On a multi-core machine the
// parallel variant should approach linear scaling; `up4bench -perf`
// records the measured trajectory in BENCH_5.json.
func BenchmarkProcessBatch(b *testing.B) {
	traffic := perf.Traffic()
	const batchSize = 256
	batch := make([][]byte, batchSize)
	for i := range batch {
		batch[i] = traffic[i%len(traffic)]
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 0}, {"batch", 1}, {"parallel4", 4}} {
		b.Run("P4/"+mode.name, func(b *testing.B) {
			sw, err := perf.Switch("P4")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if mode.workers == 0 {
				for i := 0; i < b.N; i++ {
					if _, err := sw.Process(batch[i%batchSize], 1); err != nil {
						b.Fatal(err)
					}
				}
				return
			}
			sw.SetWorkers(mode.workers)
			for i := 0; i < b.N; i += batchSize {
				for _, br := range sw.ProcessBatch(batch, 1) {
					if br.Err != nil {
						b.Fatal(br.Err)
					}
				}
			}
		})
	}
}

// BenchmarkCompileModule measures frontend throughput per library module.
func BenchmarkCompileModule(b *testing.B) {
	for _, name := range lib.ModuleNames() {
		src, err := lib.ModuleSource(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, err := microp4.CompileModule(name, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEnd measures the whole user journey: compile, compose,
// program, process one packet.
func BenchmarkEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exec, _, traffic := buildBenchEngines(b, "P4")
		out, err := exec.Process(traffic[0], sim.Metadata{InPort: 1})
		if err != nil {
			b.Fatal(err)
		}
		if out.Dropped {
			b.Fatal("unexpected drop")
		}
	}
}

// sanity anchor: composition must stay deterministic so benchmarks are
// comparable run to run.
func BenchmarkComposeDeterminism(b *testing.B) {
	main, mods, err := lib.CompileProgram("P4")
	if err != nil {
		b.Fatal(err)
	}
	var first *mat.Pipeline
	for i := 0; i < b.N; i++ {
		res, err := midend.Build(main, mods...)
		if err != nil {
			b.Fatal(err)
		}
		if first == nil {
			first = res.Pipeline
			continue
		}
		if len(res.Pipeline.Tables) != len(first.Tables) || res.Pipeline.BsBytes != first.BsBytes {
			b.Fatal("composition is not deterministic")
		}
	}
}

// BenchmarkAblationCleanCopies measures the §8.1 clean-copy elimination:
// MAU stages and synthesized logical tables with the optimization off vs
// on, for every program (the DESIGN.md ablation).
func BenchmarkAblationCleanCopies(b *testing.B) {
	opts := tna.DefaultOptions()
	for _, name := range programNames {
		main, mods, err := lib.CompileProgram(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			label string
			opt   bool
		}{{"baseline", false}, {"optimized", true}} {
			b.Run(name+"/"+mode.label, func(b *testing.B) {
				var rep *tna.Report
				for i := 0; i < b.N; i++ {
					res, err := midend.BuildWith(midend.Options{
						Compose: mat.Options{EliminateCleanCopies: mode.opt},
					}, main, mods...)
					if err != nil {
						b.Fatal(err)
					}
					rep, err = tna.CompileComposed(res.Pipeline, opts)
					if err != nil {
						b.Fatal(err)
					}
				}
				if rep.Feasible {
					b.ReportMetric(float64(rep.Stages), "stages")
					b.ReportMetric(float64(rep.Tables), "tables")
					b.ReportMetric(float64(rep.Bits), "phvbits")
				}
			})
		}
	}
}

// BenchmarkAblationSplitParser compares the two §8.1 parser encodings:
// one path-product MAT per parser vs one MAT per parse depth.
func BenchmarkAblationSplitParser(b *testing.B) {
	opts := tna.DefaultOptions()
	for _, name := range programNames {
		main, mods, err := lib.CompileProgram(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			label string
			split bool
		}{{"single-mat", false}, {"split-mats", true}} {
			b.Run(name+"/"+mode.label, func(b *testing.B) {
				var rep *tna.Report
				for i := 0; i < b.N; i++ {
					res, err := midend.BuildWith(midend.Options{
						Compose: mat.Options{SplitParserMATs: mode.split},
					}, main, mods...)
					if err != nil {
						b.Fatal(err)
					}
					rep, err = tna.CompileComposed(res.Pipeline, opts)
					if err != nil {
						b.Fatal(err)
					}
				}
				if rep.Feasible {
					b.ReportMetric(float64(rep.Stages), "stages")
					b.ReportMetric(float64(rep.Tables), "tables")
				} else {
					b.ReportMetric(1, "infeasible")
				}
			})
		}
	}
}
