package microp4_test

import (
	"testing"

	"microp4"
	"microp4/internal/netsim"
	"microp4/internal/pkt"
)

// threeHopNetwork wires the classic three-router line from
// TestThreeHopTopology onto the netsim.Network API: s1:1 -> s2:0,
// s2:1 -> s3:0, ingress at s1:0, egress at s3:1.
func threeHopNetwork(t *testing.T, seed uint64, m netsim.FaultModel) *netsim.Network {
	t.Helper()
	dp := compileLib(t, "P4")
	n := netsim.New(seed)
	for hop := 1; hop <= 3; hop++ {
		sw := dp.NewSwitch()
		sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
			[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", 100)
		sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(100)},
			"forward", uint64(0xAA0000000000+hop), uint64(0xBB0000000000+hop), 1)
		if err := n.AddSwitch([]string{"", "s1", "s2", "s3"}[hop], sw); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect("s1", 1, "s2", 0, m); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("s2", 1, "s3", 0, m); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestNetworkThreeHop is the network_test.go three-hop scenario ported
// onto the Network API: the packet crosses lossless links, each hop
// decrements TTL and rewrites MACs, and the payload survives intact.
func TestNetworkThreeHop(t *testing.T) {
	n := threeHopNetwork(t, 1, netsim.FaultModel{})
	data := pkt.NewBuilder().
		Ethernet(0xFF, 0xEE, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 0x0B000001, Dst: 0x0A000042}).
		TCP(1234, 80).Payload([]byte("end-to-end")).Bytes()
	if err := n.Inject("s1", 0, data); err != nil {
		t.Fatal(err)
	}
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	out := n.Egress("s3")
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("egress = %+v", out)
	}
	got := out[0].Data
	if ttl := pkt.IPv4TTL(got, 14); ttl != 61 {
		t.Errorf("ttl = %d, want 61 after three hops", ttl)
	}
	if dmac := pkt.EthDst(got); dmac != 0xAA0000000003 {
		t.Errorf("dmac = %#x, want the third hop's rewrite", dmac)
	}
	if !equalBytes(got[len(got)-10:], []byte("end-to-end")) {
		t.Error("payload corrupted across the path")
	}
	if st.Steps != 3 || st.Egressed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestNetworkTTLDeath: a TTL=2 packet survives two hops and dies at the
// third — on the Network API that surfaces as a node drop, not egress.
func TestNetworkTTLDeath(t *testing.T) {
	n := threeHopNetwork(t, 2, netsim.FaultModel{})
	low := pkt.NewBuilder().
		Ethernet(0xFF, 0xEE, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 2, Protocol: 6, Src: 1, Dst: 0x0A000042}).
		TCP(1, 2).Bytes()
	if err := n.Inject("s1", 0, low); err != nil {
		t.Fatal(err)
	}
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if out := n.Egress("s3"); len(out) != 0 {
		t.Fatalf("TTL-expired packet egressed: %+v", out)
	}
	if st.Steps != 3 || st.NodeDrops != 1 {
		t.Errorf("stats = %+v (want 3 hops processed, 1 node drop)", st)
	}
}

// TestNetworkChaosThreeHop runs real switches under a lossy fault model
// and checks graceful degradation: no Run error, every injected packet
// accounted for, and the seeded run is reproducible against itself.
func TestNetworkChaosThreeHop(t *testing.T) {
	run := func() ([]netsim.FaultEvent, netsim.RunStats, int) {
		n := threeHopNetwork(t, 0xDEAD, netsim.FaultModel{
			Drop: 0.2, BitFlip: 0.3, Truncate: 0.15, Duplicate: 0.1, Reorder: 0.1,
		})
		var events []netsim.FaultEvent
		n.OnFault(func(e netsim.FaultEvent) { events = append(events, e) })
		for i := 0; i < 50; i++ {
			data := pkt.NewBuilder().
				Ethernet(0xFF, 0xEE, pkt.EtherTypeIPv4).
				IPv4(pkt.IPv4Opts{TTL: 8, Protocol: 6, Src: uint32(i), Dst: 0x0A000042}).
				TCP(uint16(i), 80).Bytes()
			if err := n.Inject("s1", 0, data); err != nil {
				t.Fatal(err)
			}
		}
		st, err := n.Run(0)
		if err != nil {
			t.Fatalf("chaos run aborted: %v", err)
		}
		return events, st, len(n.Egress("s3"))
	}
	e1, s1, eg1 := run()
	e2, s2, eg2 := run()
	if len(e1) == 0 {
		t.Fatal("lossy links produced no fault events over 50 packets")
	}
	if len(e1) != len(e2) || eg1 != eg2 {
		t.Fatalf("chaos run not reproducible: %d/%d events, %d/%d egressed", len(e1), len(e2), eg1, eg2)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d diverged: %v vs %v", i, e1[i], e2[i])
		}
	}
	if s1.Injected != s2.Injected || s1.Steps != s2.Steps ||
		s1.NodeDrops != s2.NodeDrops || s1.ProcErrors != s2.ProcErrors {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
}
