package microp4_test

// Benchmark-trajectory guards (PR 5):
//
//   - TestExecHotPathNoAlloc pins the compiled engine's zero-alloc
//     invariant: with metrics off, Process + Release allocates nothing.
//   - TestObsOverheadGuard pins the cost of enabled observability with
//     latency sampling amortized (SampleEvery=256) to <10%.
//   - TestBenchRegression re-measures the serial engine cells and fails
//     when any regresses more than 3x against the checked-in
//     BENCH_5.json. UPDATE_BASELINE=1 regenerates the baseline, the
//     same escape hatch UPDATE_GOLDEN gives the golden files.
//
// The timing guards skip under the race detector and -short: both
// distort per-packet cost far beyond the thresholds being pinned.

import (
	"os"
	"testing"
	"time"

	"microp4"
	"microp4/internal/obs"
	"microp4/internal/perf"
	"microp4/internal/sim"
)

const baselinePath = "BENCH_5.json"

// TestExecHotPathNoAlloc pins the tentpole invariant: the slot-compiled
// engine processes packets with zero heap allocations when metrics are
// off and results are released back to the pool — in all three modes.
// Serial exercises sim.Exec directly; batch and parallel exercise the
// full Switch architecture loop through ProcessBatchInto with a reused
// results slice, so outBuf pooling and the persistent worker pool are
// pinned too.
func TestExecHotPathNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomly drops sync.Pool items, so pooling cannot be exact")
	}
	progs := []string{"P1", "P4", "P7", "P8", "P9", "P10", "P11"}
	t.Run("serial", func(t *testing.T) {
		for _, prog := range progs {
			exec, _, err := perf.Engines(prog)
			if err != nil {
				t.Fatal(err)
			}
			// P9/P10/P11 get their stateful mixes with an advancing clock
			// so the zero-alloc pin covers the flowtable path too:
			// lookups, free-list learns, refresh re-files, and wheel
			// advances — plus P10's grow/shrink header rewrites and
			// P11's stick-pinned backend rewrite.
			traffic := perf.TrafficFor(prog)
			var clock uint64
			var procErr error
			allocs := testing.AllocsPerRun(500, func() {
				for _, p := range traffic {
					clock++
					res, err := exec.Process(p, sim.Metadata{InPort: 1, InTimestamp: clock})
					if err != nil {
						procErr = err
						return
					}
					res.Release()
				}
			})
			if procErr != nil {
				t.Fatalf("%s: %v", prog, procErr)
			}
			if allocs != 0 {
				t.Errorf("%s: hot path allocates %v per run, want 0", prog, allocs)
			}
		}
	})
	for _, mode := range []struct {
		name    string
		workers int
	}{{"batch", 1}, {"parallel", 4}} {
		t.Run(mode.name, func(t *testing.T) {
			for _, prog := range progs {
				sw, err := perf.Switch(prog)
				if err != nil {
					t.Fatal(err)
				}
				sw.SetWorkers(mode.workers)
				traffic := perf.TrafficFor(prog)
				batch := make([][]byte, 256)
				for i := range batch {
					batch[i] = traffic[i%len(traffic)]
				}
				var results []microp4.BatchResult
				var procErr error
				runBatch := func() {
					results = sw.ProcessBatchInto(batch, 1, results)
					for i := range results {
						if results[i].Err != nil {
							procErr = results[i].Err
						}
						results[i].Release()
					}
					sw.Digests()
				}
				// A few warm-up batches settle the outBuf pool across all
				// workers before AllocsPerRun's own warm-up run measures.
				for i := 0; i < 4; i++ {
					runBatch()
				}
				allocs := testing.AllocsPerRun(50, runBatch)
				if procErr != nil {
					t.Fatalf("%s: %v", prog, procErr)
				}
				if perPkt := allocs / float64(len(batch)); perPkt != 0 {
					t.Errorf("%s/%s: %v allocs per batch (%.3f/pkt), want 0",
						prog, mode.name, allocs, perPkt)
				}
			}
		})
	}
}

// measureExec times the compiled engine over the standard traffic for
// dur and returns ns/packet.
func measureExec(t *testing.T, exec *sim.Exec, dur time.Duration) float64 {
	t.Helper()
	traffic := perf.Traffic()
	meta := sim.Metadata{InPort: 1}
	i := 0
	r, err := perf.Measure(dur, len(traffic), func() error {
		for range traffic {
			res, err := exec.Process(traffic[i%len(traffic)], meta)
			if err != nil {
				return err
			}
			res.Release()
			i++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.NsPerPkt
}

// TestObsOverheadGuard pins the satellite-3 contract: with the latency
// histogram sampled every 256th packet, fully enabled metrics cost
// less than 10% over the metrics-off hot path. Several attempts guard
// against scheduler noise; any one passing attempt suffices.
func TestObsOverheadGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("timing guard: race detector distorts per-packet cost")
	}
	if testing.Short() {
		t.Skip("timing guard: skipped in -short mode")
	}
	exec, _, err := perf.Engines("P4")
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMetrics(obs.NewRegistry())
	m.SampleEvery.Store(256)
	const attempts = 5
	var worst float64
	for i := 0; i < attempts; i++ {
		exec.SetMetrics(nil)
		off := measureExec(t, exec, 80*time.Millisecond)
		exec.SetMetrics(m)
		on := measureExec(t, exec, 80*time.Millisecond)
		overhead := on/off - 1
		if overhead < 0.10 {
			return
		}
		if overhead > worst {
			worst = overhead
		}
	}
	t.Errorf("metrics overhead %.1f%% across %d attempts, want <10%%", worst*100, attempts)
}

// TestBenchRegression is the CI gate over BENCH_5.json: it re-measures
// every serial cell quickly and fails on a >3x ns/packet regression.
// Parallel cells don't gate — their numbers depend on the recorder's
// core count. Run with UPDATE_BASELINE=1 to re-record the baseline
// (or use `make bench`, which measures longer).
func TestBenchRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("timing guard: race detector distorts per-packet cost")
	}
	if testing.Short() {
		t.Skip("timing guard: skipped in -short mode")
	}
	programs := []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "P11"}
	if os.Getenv("UPDATE_BASELINE") != "" {
		rep, err := perf.RunSuite(programs, 300*time.Millisecond, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Write(baselinePath); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", baselinePath)
		return
	}
	baseline, err := perf.Load(baselinePath)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_BASELINE=1)", err)
	}
	// Up to three attempts: a loaded CI machine can triple apparent
	// per-packet cost on its own.
	var violations []string
	for attempt := 0; attempt < 3; attempt++ {
		current, err := perf.RunSuite(programs, 60*time.Millisecond, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		violations = perf.Compare(baseline, current, 3.0)
		if len(violations) == 0 {
			return
		}
	}
	for _, v := range violations {
		t.Errorf("regression: %s", v)
	}
	t.Log("re-record the baseline with UPDATE_BASELINE=1 go test -run TestBenchRegression .")
}
