package microp4_test

// Telemetry-shard correctness (PR 7): parallel batch processing counts
// into per-worker shards, and exposition aggregates them at scrape
// time. These tests pin the two halves of that contract: scrapes may
// race live traffic (run with -race), and the aggregated counters must
// equal the serial ground truth exactly.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"testing"

	"microp4"
	"microp4/internal/perf"
)

// counterSnapshot decodes a registry's JSON exposition into a
// deterministic map of counter name+labels -> value. Histogram bucket
// and sum series are timing-dependent and excluded; histogram counts
// are included (with SampleEvery=1 they must equal the packet count).
func counterSnapshot(t *testing.T, sw *microp4.Switch) map[string]uint64 {
	t.Helper()
	var buf bytes.Buffer
	if err := sw.Metrics().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name   string            `json:"name"`
			Type   string            `json:"type"`
			Labels map[string]string `json:"labels"`
			Value  *int64            `json:"value"`
			Count  *uint64           `json:"count"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]uint64)
	for _, m := range doc.Metrics {
		keys := make([]string, 0, len(m.Labels))
		for k, v := range m.Labels {
			keys = append(keys, k+"="+v)
		}
		sort.Strings(keys)
		id := fmt.Sprintf("%s%v", m.Name, keys)
		switch {
		case m.Type == "counter" && m.Value != nil:
			out[id] = uint64(*m.Value)
		case m.Type == "gauge" && m.Value != nil:
			out[id] = uint64(*m.Value)
		case m.Type == "histogram" && m.Count != nil:
			out[id+"_count"] = *m.Count
		}
	}
	return out
}

// runBatches pushes `batches` copies of the standard traffic batch
// through the switch and releases every result.
func runBatches(t *testing.T, sw *microp4.Switch, batch [][]byte, batches int) {
	t.Helper()
	var results []microp4.BatchResult
	for b := 0; b < batches; b++ {
		results = sw.ProcessBatchInto(batch, 1, results)
		for i := range results {
			if results[i].Err != nil {
				t.Fatalf("batch %d pkt %d: %v", b, i, results[i].Err)
			}
			results[i].Release()
		}
		sw.Digests()
	}
}

// TestShardedScrapeMatchesSerial is the concurrent-scrape correctness
// gate: Prometheus and JSON exposition race live parallel batch
// processing (per-worker shard writes plus shard creation), and the
// aggregated counters afterwards equal a serially processed twin's,
// key for key.
func TestShardedScrapeMatchesSerial(t *testing.T) {
	const batches = 16
	traffic := perf.Traffic()
	batch := make([][]byte, 128)
	for i := range batch {
		batch[i] = traffic[i%len(traffic)]
	}

	serial, err := perf.Switch("P4")
	if err != nil {
		t.Fatal(err)
	}
	serial.EnableMetrics()
	runBatches(t, serial, batch, batches)
	want := counterSnapshot(t, serial)

	parallel, err := perf.Switch("P4")
	if err != nil {
		t.Fatal(err)
	}
	parallel.EnableMetrics()
	parallel.SetWorkers(4)

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = parallel.Metrics().WritePrometheus(io.Discard)
					_ = parallel.Metrics().WriteJSON(io.Discard)
				}
			}
		}()
	}
	runBatches(t, parallel, batch, batches)
	close(stop)
	scrapers.Wait()

	got := counterSnapshot(t, parallel)
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s: parallel aggregate %d, serial ground truth %d", k, got[k], w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: present in parallel run only (value %d)", k, got[k])
		}
	}
	if want["up4_switch_packets_total[]"] == 0 {
		t.Fatal("ground truth recorded no packets — snapshot key scheme broken")
	}
}
