package microp4_test

import (
	"errors"
	"testing"

	"microp4"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// wantReject asserts err is a *ControlError of the given reject class
// and that it matches the control-class sentinel.
func wantReject(t *testing.T, err error, kind string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want %s rejection, got nil", kind)
	}
	var ce *microp4.ControlError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *ControlError", err, err)
	}
	if ce.Kind != kind {
		t.Errorf("reject class = %q, want %q (%v)", ce.Kind, kind, err)
	}
	if !errors.Is(err, microp4.ErrControl) {
		t.Errorf("%v does not match ErrControl", err)
	}
}

// TestControlSchemaValidation walks every reject class through the
// flagship router's schema.
func TestControlSchemaValidation(t *testing.T) {
	sc := compileLib(t, "P4").ControlAPI().Schema()

	ok := func(err error) {
		t.Helper()
		if err != nil {
			t.Errorf("valid op rejected: %v", err)
		}
	}
	ok(sc.ValidateAddEntry("forward_tbl",
		[]microp4.Key{microp4.Exact(100)}, "forward", []uint64{1, 2, 3}))
	ok(sc.ValidateAddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
		[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", []uint64{100}))
	ok(sc.ValidateSetDefault("forward_tbl", "drop_pkt", nil))
	ok(sc.ValidateClearTable("forward_tbl"))
	ok(sc.ValidateSetMulticastGroup(1, []uint64{1, 2, 3}))

	wantReject(t, sc.ValidateAddEntry("nope_tbl",
		nil, "forward", nil), sim.RejectUnknownTable)
	wantReject(t, sc.ValidateAddEntry("forward_tbl",
		[]microp4.Key{microp4.Exact(1), microp4.Exact(2)}, "forward", []uint64{1, 2, 3}),
		sim.RejectKeyCount)
	// forward_tbl's key is bit<16>.
	wantReject(t, sc.ValidateAddEntry("forward_tbl",
		[]microp4.Key{microp4.Exact(0x10000)}, "forward", []uint64{1, 2, 3}),
		sim.RejectKeyWidth)
	// ipv4_lpm_tbl's key is bit<32>: prefix length 33 is out of range.
	wantReject(t, sc.ValidateAddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
		[]microp4.Key{microp4.LPM(0, 33)}, "l3_i.ipv4_i.process", []uint64{100}),
		sim.RejectKeyWidth)
	// Actions belong to their table: the lpm action is not selectable here.
	wantReject(t, sc.ValidateAddEntry("forward_tbl",
		[]microp4.Key{microp4.Exact(100)}, "l3_i.ipv4_i.process", []uint64{100}),
		sim.RejectUnknownAction)
	wantReject(t, sc.ValidateAddEntry("forward_tbl",
		[]microp4.Key{microp4.Exact(100)}, "forward", []uint64{1}),
		sim.RejectArgArity)
	// forward's port parameter is bit<9>.
	wantReject(t, sc.ValidateAddEntry("forward_tbl",
		[]microp4.Key{microp4.Exact(100)}, "forward", []uint64{1, 2, 0x200}),
		sim.RejectArgWidth)
	wantReject(t, sc.ValidateSetDefault("forward_tbl", "forward", nil), sim.RejectArgArity)
	wantReject(t, sc.ValidateSetDefault("nope_tbl", "forward", nil), sim.RejectUnknownTable)
	wantReject(t, sc.ValidateClearTable("nope_tbl"), sim.RejectUnknownTable)
	wantReject(t, sc.ValidateSetMulticastGroup(0, nil), sim.RejectBadGroup)
	wantReject(t, sc.ValidateSetMulticastGroup(1, make([]uint64, microp4.MaxMulticastPorts+1)),
		sim.RejectBadGroup)
	// Don't-care keys skip width checks.
	ok(sc.ValidateAddEntry("forward_tbl", []microp4.Key{microp4.Any()}, "drop_pkt", nil))
}

// TestSwitchTryAPI: the Try* methods reject invalid ops without
// touching state, while the legacy void methods stay best-effort.
func TestSwitchTryAPI(t *testing.T) {
	dp := compileLib(t, "P4")
	sw := dp.NewSwitch()
	wantReject(t, sw.TryAddEntry("forward_tbl",
		[]microp4.Key{microp4.Exact(0x10000)}, "forward", 1, 2, 3), sim.RejectKeyWidth)
	wantReject(t, sw.TrySetDefault("forward_tbl", "no_such_action"), sim.RejectUnknownAction)
	wantReject(t, sw.TryClearTable("nope_tbl"), sim.RejectUnknownTable)
	wantReject(t, sw.TrySetMulticastGroup(0, 1), sim.RejectBadGroup)
	if err := sw.TryAddEntry("forward_tbl",
		[]microp4.Key{microp4.Exact(100)}, "forward", 1, 2, 3); err != nil {
		t.Errorf("valid TryAddEntry rejected: %v", err)
	}
	// The void wrapper silently discards the same rejection.
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(0x10000)}, "forward", 1, 2, 3)
}

// TestSwitchCheckpointRestore: a checkpoint captures table and
// multicast state; restore rewinds to it, and one checkpoint can be
// restored more than once.
func TestSwitchCheckpointRestore(t *testing.T) {
	dp := compileLib(t, "P4")
	sw := dp.NewSwitch()
	install := func() {
		sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
			[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", 100)
		sw.AddEntry("forward_tbl",
			[]microp4.Key{microp4.Exact(100)}, "forward", 0x00AA00000001, 0x00BB00000001, 1)
	}
	packet := pkt.NewBuilder().
		Ethernet(2, 3, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 1, Dst: 0x0A000001}).
		TCP(1000, 80).Bytes()
	probe := func() bool {
		out, err := sw.Process(packet, 7)
		if err != nil {
			t.Fatal(err)
		}
		return len(out) == 1 && out[0].Port == 1
	}
	install()
	sw.SetMulticastGroup(1, 2, 3)
	if !probe() {
		t.Fatal("baseline rules do not forward")
	}
	cp := sw.Checkpoint()

	sw.ClearTable("forward_tbl")
	sw.ClearTable("l3_i.ipv4_i.ipv4_lpm_tbl")
	sw.SetMulticastGroup(1) // empty the group
	if probe() {
		t.Fatal("cleared switch still forwards")
	}
	sw.Restore(cp)
	if !probe() {
		t.Error("restore did not bring the table state back")
	}
	// Restore is repeatable: mutate again, rewind again.
	sw.ClearTable("forward_tbl")
	if probe() {
		t.Fatal("cleared switch still forwards")
	}
	sw.Restore(cp)
	if !probe() {
		t.Error("second restore from the same checkpoint failed")
	}
}
