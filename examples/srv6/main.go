// SRv6 segment routing end-to-end (§7.1): the P7 composition steers a
// packet through its segment list hop by hop. Each "hop" is the same
// switch processing its own output again — watch the IPv6 destination
// walk the segment list while segments-left counts down.
//
//	go run ./examples/srv6
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/pkt"
)

func main() {
	m, err := lib.Program("P7")
	if err != nil {
		log.Fatal(err)
	}
	mainSrc, err := lib.Source(m.MainFile)
	if err != nil {
		log.Fatal(err)
	}
	mainMod, err := microp4.CompileModule(m.MainFile, mainSrc)
	if err != nil {
		log.Fatal(err)
	}
	var mods []*microp4.Module
	for _, name := range m.Modules {
		src, err := lib.ModuleSource(name)
		if err != nil {
			log.Fatal(err)
		}
		mod, err := microp4.CompileModule(name+".up4", src)
		if err != nil {
			log.Fatal(err)
		}
		mods = append(mods, mod)
	}
	dp, err := microp4.Build(mainMod, mods...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P7 (SRv6 router) composed: byte-stack %dB\n", dp.Stats().ByteStack)

	sw := dp.NewSwitch()
	// Each segment lives in 2001:db8:s::/48 — route them all via the
	// same /32 with per-hop next-hops resolved by the full dstHi.
	for seg, nh := range map[uint64]uint64{
		0x20010DB8_00010000: 301,
		0x20010DB8_00020000: 302,
		0x20010DB8_00030000: 303,
	} {
		sw.AddEntry("l3_i.ipv6_i.ipv6_lpm_tbl",
			[]microp4.Key{microp4.LPM(seg, 48)}, "l3_i.ipv6_i.process", nh)
	}
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(301)}, "forward", 0xA1, 0xB1, 1)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(302)}, "forward", 0xA2, 0xB2, 2)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(303)}, "forward", 0xA3, 0xB3, 3)

	// Segment list (traversed last-to-first): seg3 ← seg2 ← seg1.
	segs := [][2]uint64{
		{0x20010DB8_00030000, 0xC}, // final destination
		{0x20010DB8_00020000, 0xB},
		{0x20010DB8_00010000, 0xA}, // first hop
	}
	data := pkt.NewBuilder().
		Ethernet(1, 2, pkt.EtherTypeIPv6).
		IPv6(pkt.IPv6Opts{NextHdr: pkt.ProtoSRv6, HopLimit: 64,
			SrcHi: 0xFD00000000000001, SrcLo: 1,
			DstHi: 0x20010DB8_00010000, DstLo: 0xA}).
		SRv6(pkt.ProtoNoNext, 3, segs).
		Payload([]byte("segment-routed payload")).Bytes()

	for hop := 1; ; hop++ {
		out, err := sw.Process(data, 0)
		if err != nil {
			log.Fatal(err)
		}
		if len(out) == 0 {
			fmt.Printf("hop %d: dropped (segment list exhausted, no route)\n", hop)
			return
		}
		o := out[0]
		segsLeft := o.Data[14+40+3]
		fmt.Printf("hop %d: -> port %d  dst=2001:db8:%x::%x  segments-left=%d  hop-limit=%d\n",
			hop, o.Port,
			binary.BigEndian.Uint16(o.Data[14+28:14+30]),
			pkt.IPv6DstLo(o.Data, 14), segsLeft, pkt.IPv6HopLimit(o.Data, 14))
		if segsLeft == 0 {
			fmt.Println("segment list consumed; packet delivered toward its final destination")
			return
		}
		data = o.Data
	}
}
