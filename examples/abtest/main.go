// A-B testing (§7.2, from P4Visor): a one-byte test header decides
// whether a packet is processed by the production program or by an
// experimental variant. The main program extracts the flag, dispatches,
// and puts the test header back — both variants stay self-contained
// µP4 modules.
//
//	go run ./examples/abtest
package main

import (
	"fmt"
	"log"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/pkt"
)

// testRouter is the experimental IPv4 variant under test: it routes the
// same way but additionally stamps the DSCP field so downstream tooling
// can spot experiment traffic.
const testRouter = `
struct empty_t { }
header ipv4_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
struct tr_t { ipv4_h ipv4; }
program TestIPv4 : implements Unicast {
  parser P(extractor ex, pkt p, out tr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout tr_t h, inout empty_t m, im_t im, out bit<16> nh) {
    action process(bit<16> next_hop) {
      h.ipv4.ttl = h.ipv4.ttl - 1;
      h.ipv4.diffserv = 0xB8;   // mark experiment traffic
      nh = next_hop;
    }
    action default_route() { nh = 0; }
    table exp_lpm_tbl {
      key = { h.ipv4.dstAddr : lpm; }
      actions = { process; default_route; }
      default_action = default_route;
    }
    apply { nh = 0; exp_lpm_tbl.apply(); }
  }
  control D(emitter em, pkt p, in tr_t h) { apply { em.emit(p, h.ipv4); } }
}
`

// abMain is the §7.2 snippet made concrete: extract the 1-byte test
// header, dispatch on its flag, and re-emit it.
const abMain = `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
header test_h { bit<8> flag; }
struct abhdr_t { ethernet_h eth; test_h testHdr; }

IPv4(pkt p, im_t im, out bit<16> nh);
TestIPv4(pkt p, im_t im, out bit<16> nh);

program ABTest : implements Unicast {
  parser P(extractor ex, pkt p, out abhdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.eth);
      ex.extract(p, h.testHdr);
      transition accept;
    }
  }
  control C(pkt p, inout abhdr_t h, inout empty_t m, im_t im) {
    bit<16> nh;
    IPv4() prod_prog;
    TestIPv4() test_prog;
    action drop_pkt() { im.drop(); }
    action forward(bit<9> port) { im.set_out_port(port); }
    table forward_tbl {
      key = { nh : exact; }
      actions = { forward; drop_pkt; }
      default_action = drop_pkt;
    }
    apply {
      nh = 0;
      if (h.testHdr.flag == 1) {
        test_prog.apply(p, im, nh);
      } else {
        prod_prog.apply(p, im, nh);
      }
      forward_tbl.apply();
    }
  }
  control D(emitter em, pkt p, in abhdr_t h) {
    apply {
      em.emit(p, h.eth);
      em.emit(p, h.testHdr);   // the deparser puts back the test header
    }
  }
}

ABTest(P, C, D) main;
`

func main() {
	ipv4Src, err := lib.ModuleSource("IPv4")
	if err != nil {
		log.Fatal(err)
	}
	prod, err := microp4.CompileModule("ipv4.up4", ipv4Src)
	if err != nil {
		log.Fatal(err)
	}
	test, err := microp4.CompileModule("test_ipv4.up4", testRouter)
	if err != nil {
		log.Fatal(err)
	}
	main, err := microp4.CompileModule("abtest.up4", abMain)
	if err != nil {
		log.Fatal(err)
	}
	dp, err := microp4.Build(main, prod, test)
	if err != nil {
		log.Fatal(err)
	}
	sw := dp.NewSwitch()
	sw.AddEntry("prod_prog.ipv4_lpm_tbl",
		[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "prod_prog.process", 100)
	sw.AddEntry("test_prog.exp_lpm_tbl",
		[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "test_prog.process", 100)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(100)}, "forward", 4)

	mk := func(flag byte) []byte {
		return pkt.NewBuilder().
			Ethernet(1, 2, 0x9999). // experiment ethertype
			Payload([]byte{flag}).  // test header
			IPv4(pkt.IPv4Opts{TTL: 10, Protocol: 6, Src: 5, Dst: 0x0A000042}).
			TCP(1, 2).Bytes()
	}
	for _, flag := range []byte{0, 1} {
		out, err := sw.Process(mk(flag), 2)
		if err != nil {
			log.Fatal(err)
		}
		if len(out) != 1 {
			log.Fatalf("flag %d: %d outputs", flag, len(out))
		}
		o := out[0]
		dscp := o.Data[15+1] // test header byte + ipv4 tos at offset 1
		fmt.Printf("flag=%d -> port %d, ttl=%d, tos=%#02x (%s), test header preserved=%v\n",
			flag, o.Port, o.Data[15+8], dscp, variant(dscp), o.Data[14] == flag)
	}
}

func variant(dscp byte) string {
	if dscp == 0xB8 {
		return "experimental path"
	}
	return "production path"
}
