// Quickstart: build the paper's modular router (Fig. 8) from source,
// program its tables, and push packets through the behavioral switch.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/pkt"
)

func main() {
	// 1. Compile the library modules (Fig. 4a: each module separately).
	var mods []*microp4.Module
	for _, name := range []string{"L3", "IPv4", "IPv6"} {
		src, err := lib.ModuleSource(name)
		if err != nil {
			log.Fatal(err)
		}
		m, err := microp4.CompileModule(name+".up4", src)
		if err != nil {
			log.Fatalf("compile %s: %v", name, err)
		}
		mods = append(mods, m)
	}

	// 2. Compile the main program — Ethernet processing that invokes the
	// L3 module for the next hop (Fig. 8b).
	mainSrc, err := lib.Source("up4/p4_router.up4")
	if err != nil {
		log.Fatal(err)
	}
	router, err := microp4.CompileModule("p4_router.up4", mainSrc)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Link and compose (Fig. 4b): µP4C homogenizes the modules'
	// parsers and deparsers into MATs over a shared byte-stack.
	dp, err := microp4.Build(router, mods...)
	if err != nil {
		log.Fatal(err)
	}
	st := dp.Stats()
	fmt.Printf("composed %d-byte byte-stack (extract-length %dB, min packet %dB)\n",
		st.ByteStack, st.ExtractLength, st.MinPacket)
	fmt.Printf("tables: %v\n\n", dp.Tables())

	// 4. Program the control plane. Table and action names are fully
	// qualified by module instance path — each module keeps its own
	// tables (µP4's encapsulation).
	sw := dp.NewSwitch()
	sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
		[]microp4.Key{microp4.LPM(0x0A000000, 8)}, // 10.0.0.0/8
		"l3_i.ipv4_i.process", 100)
	sw.AddEntry("l3_i.ipv6_i.ipv6_lpm_tbl",
		[]microp4.Key{microp4.LPM(0x20010DB8_00000000, 32)}, // 2001:db8::/32
		"l3_i.ipv6_i.process", 300)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(100)},
		"forward", 0x00AA00000001, 0x00BB00000001, 1)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(300)},
		"forward", 0x00AA00000003, 0x00BB00000003, 3)

	// 5. Send traffic.
	send(sw, "IPv4 to 10.1.2.3", pkt.NewBuilder().
		Ethernet(0x02, 0x01, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 0x0B000001, Dst: 0x0A010203}).
		TCP(4242, 80).Payload([]byte("quickstart")).Bytes())

	send(sw, "IPv6 to 2001:db8::7", pkt.NewBuilder().
		Ethernet(0x02, 0x01, pkt.EtherTypeIPv6).
		IPv6(pkt.IPv6Opts{NextHdr: pkt.ProtoNoNext, HopLimit: 17,
			DstHi: 0x20010DB8_00000000, DstLo: 7}).Bytes())

	send(sw, "IPv4 with no route", pkt.NewBuilder().
		Ethernet(0x02, 0x01, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoUDP, Src: 1, Dst: 0x7F000001}).Bytes())

	send(sw, "IPv4 with TTL 0", pkt.NewBuilder().
		Ethernet(0x02, 0x01, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 0, Protocol: pkt.ProtoTCP, Src: 1, Dst: 0x0A010203}).Bytes())
}

func send(sw *microp4.Switch, what string, data []byte) {
	out, err := sw.Process(data, 7)
	if err != nil {
		log.Fatalf("%s: %v", what, err)
	}
	if len(out) == 0 {
		fmt.Printf("%-22s -> dropped\n", what)
		return
	}
	for _, o := range out {
		desc := ""
		if pkt.EthType(o.Data) == pkt.EtherTypeIPv4 {
			desc = fmt.Sprintf(" ttl=%d", pkt.IPv4TTL(o.Data, 14))
		} else if pkt.EthType(o.Data) == pkt.EtherTypeIPv6 {
			desc = fmt.Sprintf(" hop=%d", pkt.IPv6HopLimit(o.Data, 14))
		}
		fmt.Printf("%-22s -> port %d, dmac %012x%s\n", what, o.Port, pkt.EthDst(o.Data), desc)
	}
}
