// NF chaining (§7.2): realizes CoVisor's sequential and override
// composition operators with plain µP4 — a firewall module runs first;
// if it permits the packet, the router picks a next hop, and an MPLS
// label-edge module may *override* the routing decision by encapsulating
// the packet (growing it on the wire) based on its traffic class.
//
//	go run ./examples/nfchain
package main

import (
	"fmt"
	"log"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/pkt"
)

// mplsEncap pushes an MPLS label in front of the packet view it
// receives (which starts right after Ethernet): its parser consumes
// nothing, and its deparser emits a header that was not parsed — the
// packet grows by 4 bytes (Δ=4 in the §5.2 analysis).
const mplsEncap = `
struct empty_t { }
header mpls_h { bit<20> label; bit<3> tc; bit<1> bos; bit<8> ttl; }
struct encaphdr_t { mpls_h lbl; }
program MplsEncap : implements Unicast {
  parser P(extractor ex, pkt p, out encaphdr_t h, inout empty_t m, im_t im) {
    state start { transition accept; }
  }
  control C(pkt p, inout encaphdr_t h, inout empty_t m, im_t im, in bit<16> tc, inout bit<16> nh, inout bit<16> etype) {
    action encap(bit<20> new_label, bit<16> next_hop) {
      h.lbl.setValid();
      h.lbl.label = new_label;
      h.lbl.tc = 0;
      h.lbl.bos = 1;
      h.lbl.ttl = 64;
      etype = 0x8847;
      nh = next_hop;
    }
    action skip_encap() { }
    table lbl_tbl {
      key = { tc : exact; }
      actions = { encap; skip_encap; }
      default_action = skip_encap;
    }
    apply { lbl_tbl.apply(); }
  }
  control D(emitter em, pkt p, in encaphdr_t h) {
    apply { em.emit(p, h.lbl); }
  }
}
`

// chainMain composes firewall → router → (override) MPLS encap.
const chainMain = `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct ethhdr_t { ethernet_h eth; }

ACL(pkt p, im_t im, out bit<1> permit);
L3(pkt p, im_t im, out bit<16> nh, inout bit<16> etype);
MplsEncap(pkt p, im_t im, in bit<16> tc, inout bit<16> nh, inout bit<16> etype);

program NfChain : implements Unicast {
  parser P(extractor ex, pkt p, out ethhdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout ethhdr_t h, inout empty_t m, im_t im) {
    bit<1> permit;
    bit<16> nh;
    bit<16> tc;
    ACL() fw_i;
    L3() l3_i;
    MplsEncap() ler_i;
    action drop_pkt() { im.drop(); }
    action forward(bit<48> dmac, bit<48> smac, bit<9> port) {
      h.eth.dstMac = dmac;
      h.eth.srcMac = smac;
      im.set_out_port(port);
    }
    table forward_tbl {
      key = { nh : exact; }
      actions = { forward; drop_pkt; }
      default_action = drop_pkt;
    }
    apply {
      permit = 1;
      nh = 0;
      if (h.eth.etherType == 0x0800) {
        // Sequential: Firewall -> Routing (§7.2).
        fw_i.apply(p, im, permit);
      }
      if (permit == 1) {
        l3_i.apply(p, im, nh, h.eth.etherType);
        // Override: the LER may replace the routing decision based on
        // the packet's traffic class.
        tc = nh;
        ler_i.apply(p, im, tc, nh, h.eth.etherType);
        forward_tbl.apply();
      }
    }
  }
  control D(emitter em, pkt p, in ethhdr_t h) {
    apply { em.emit(p, h.eth); }
  }
}

NfChain(P, C, D) main;
`

func compile(name, src string) *microp4.Module {
	m, err := microp4.CompileModule(name, src)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return m
}

func libModule(name string) *microp4.Module {
	src, err := lib.ModuleSource(name)
	if err != nil {
		log.Fatal(err)
	}
	return compile(name+".up4", src)
}

func main() {
	dp, err := microp4.Build(
		compile("nfchain.up4", chainMain),
		libModule("ACL"), libModule("L3"), libModule("IPv4"), libModule("IPv6"),
		compile("mpls_encap.up4", mplsEncap),
	)
	if err != nil {
		log.Fatal(err)
	}
	st := dp.Stats()
	fmt.Printf("NF chain composed: byte-stack %dB (may grow %dB for the MPLS label)\n\n",
		st.ByteStack, st.MaxIncrease)

	sw := dp.NewSwitch()
	// Firewall policy: block TCP port 23 (telnet).
	sw.AddEntry("fw_i.acl_tbl",
		[]microp4.Key{microp4.Any(), microp4.Any(), microp4.Ternary(6, 0xFF), microp4.Ternary(23, 0xFFFF)},
		"fw_i.deny")
	// Routes.
	sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
		[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", 100)
	sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
		[]microp4.Key{microp4.LPM(0x14000000, 8)}, "l3_i.ipv4_i.process", 200)
	// Override: traffic class 200 (the premium path) rides an MPLS LSP.
	sw.AddEntry("ler_i.lbl_tbl",
		[]microp4.Key{microp4.Exact(200)}, "ler_i.encap", 7777, 900)
	// Forwarding for plain and overridden next hops.
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(100)}, "forward", 0xA1, 0xB1, 1)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(900)}, "forward", 0xA9, 0xB9, 9)

	mk := func(dst uint32, dport uint16) []byte {
		return pkt.NewBuilder().
			Ethernet(0x1, 0x2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 33, Protocol: pkt.ProtoTCP, Src: 0x0B000001, Dst: dst}).
			TCP(5000, dport).Payload([]byte("chain")).Bytes()
	}
	show(sw, "web to 10.0.0.1 (routed)", mk(0x0A000001, 80))
	show(sw, "web to 20.0.0.9 (MPLS override)", mk(0x14000009, 443))
	show(sw, "telnet (firewalled)", mk(0x0A000001, 23))
}

func show(sw *microp4.Switch, what string, in []byte) {
	out, err := sw.Process(in, 3)
	if err != nil {
		log.Fatalf("%s: %v", what, err)
	}
	if len(out) == 0 {
		fmt.Printf("%-32s -> dropped (%dB in)\n", what, len(in))
		return
	}
	o := out[0]
	extra := ""
	if pkt.EthType(o.Data) == pkt.EtherTypeMPLS {
		extra = fmt.Sprintf(", MPLS label %d pushed (+%dB)", pkt.MPLSLabel(o.Data, 14), len(o.Data)-len(in))
	}
	fmt.Printf("%-32s -> port %d (%dB)%s\n", what, o.Port, len(o.Data), extra)
}
