// Stateful processing (§8.2 extension): a modular router composed with
// a FlowCount module whose register array persists per-source packet
// counts across packets; crossing a threshold sends a digest to the
// control plane (§6.4's CPU–dataplane interface).
//
//	go run ./examples/stateful
package main

import (
	"fmt"
	"log"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/pkt"
)

const statefulMain = `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct ethhdr_t { ethernet_h eth; }

FlowCount(pkt p, im_t im, in bit<32> threshold, out bit<32> count);
L3(pkt p, im_t im, out bit<16> nh, inout bit<16> etype);

program StatefulRouter : implements Unicast {
  parser P(extractor ex, pkt p, out ethhdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout ethhdr_t h, inout empty_t m, im_t im) {
    bit<16> nh;
    bit<32> count;
    FlowCount() fc_i;
    L3() l3_i;
    action drop_pkt() { im.drop(); }
    action forward(bit<9> port) { im.set_out_port(port); }
    table forward_tbl {
      key = { nh : exact; }
      actions = { forward; drop_pkt; }
      default_action = drop_pkt;
    }
    apply {
      nh = 0;
      count = 0;
      if (h.eth.etherType == 0x0800) {
        fc_i.apply(p, im, 3, count);
      }
      l3_i.apply(p, im, nh, h.eth.etherType);
      forward_tbl.apply();
    }
  }
  control D(emitter em, pkt p, in ethhdr_t h) { apply { em.emit(p, h.eth); } }
}
StatefulRouter(P, C, D) main;
`

func libModule(name string) *microp4.Module {
	src, err := lib.ModuleSource(name)
	if err != nil {
		log.Fatal(err)
	}
	m, err := microp4.CompileModule(name+".up4", src)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	main, err := microp4.CompileModule("stateful.up4", statefulMain)
	if err != nil {
		log.Fatal(err)
	}
	dp, err := microp4.Build(main,
		libModule("FlowCount"), libModule("L3"), libModule("IPv4"), libModule("IPv6"))
	if err != nil {
		log.Fatal(err)
	}
	sw := dp.NewSwitch()
	sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
		[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", 100)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(100)}, "forward", 2)

	mk := func(src uint32) []byte {
		return pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 30, Protocol: 6, Src: src, Dst: 0x0A000001}).
			TCP(999, 80).Bytes()
	}
	// Source .5 sends five packets; source .9 sends one.
	flows := []uint32{0xC0A80005, 0xC0A80005, 0xC0A80009, 0xC0A80005, 0xC0A80005, 0xC0A80005}
	for i, src := range flows {
		if _, err := sw.Process(mk(src), 1); err != nil {
			log.Fatal(err)
		}
		for _, d := range sw.Digests() {
			fmt.Printf("packet %d: control plane digest — heavy hitter %d.%d.%d.%d crossed the threshold\n",
				i+1, byte(d>>24), byte(d>>16), byte(d>>8), byte(d))
		}
	}
	for _, idx := range []int{5, 9} {
		v, err := sw.ReadRegister("fc_i.counters", idx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("register fc_i.counters[%d] = %d packets\n", idx, v)
	}
}
