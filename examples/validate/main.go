// A-B validation with the Orchestration interface (§5.4, §C, Fig. 13):
// every packet is processed by the production program AND a test
// variant on private copies; mismatches ship a pristine mirror copy to
// a collector port and raise control-plane digests. The compiler's PDG
// analysis slices the program into per-packet threads (the PPS the
// backend would realize with clone primitives).
//
//	go run ./examples/validate
package main

import (
	"fmt"
	"log"

	"microp4"
	"microp4/internal/eval"
	"microp4/internal/frontend"
	"microp4/internal/pdg"
	"microp4/internal/pkt"
)

const prodSrc = `
struct empty_t { }
header ipv4_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
struct phdr_t { ipv4_h ipv4; }
program Prod : implements Unicast {
  parser P(extractor ex, pkt p, out phdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout phdr_t h, inout empty_t m, im_t im, out bit<32> res) {
    apply {
      h.ipv4.ttl = h.ipv4.ttl - 1;
      res = (bit<32>) h.ipv4.ttl;
      im.set_out_port(1);
    }
  }
  control D(emitter em, pkt p, in phdr_t h) { apply { em.emit(p, h.ipv4); } }
}
`

// The variant under test has an off-by-one for TTL 128 packets.
const testSrc = `
struct empty_t { }
header ipv4_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
struct thdr_t { ipv4_h ipv4; }
program Test : implements Unicast {
  parser P(extractor ex, pkt p, out thdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout thdr_t h, inout empty_t m, im_t im, out bit<32> res) {
    apply {
      if (h.ipv4.ttl == 128) {
        h.ipv4.ttl = h.ipv4.ttl - 2;
      } else {
        h.ipv4.ttl = h.ipv4.ttl - 1;
      }
      res = (bit<32>) h.ipv4.ttl;
    }
  }
  control D(emitter em, pkt p, in thdr_t h) { apply { em.emit(p, h.ipv4); } }
}
`

const logSrc = `
struct empty_t { }
struct lhdr_t { }
program Log : implements Unicast {
  parser P(extractor ex, pkt p, out lhdr_t h, inout empty_t m, im_t im) {
    state start { transition accept; }
  }
  control C(pkt p, inout lhdr_t h, inout empty_t m, im_t im, in bit<32> a, in bit<32> b) {
    apply {
      im.digest(a);
      im.digest(b);
      im.set_out_port(99);  // the collector port for mirror copies
    }
  }
  control D(emitter em, pkt p, in lhdr_t h) { apply { } }
}
`

const validateSrc = `
struct empty_t { }
struct nohdr_t { }
Prod(pkt p, im_t im, out bit<32> res);
Test(pkt p, im_t im, out bit<32> res);
Log(pkt p, im_t im, in bit<32> a, in bit<32> b);
program Validate : implements Orchestration {
  control C(pkt p, inout nohdr_t h, inout empty_t m, im_t im, out_buf ob) {
    pkt pm;
    pkt pt;
    im_t imm;
    im_t it;
    bit<32> hp;
    bit<32> ht;
    Prod() prog_i;
    Test() test_i;
    Log() log_i;
    apply {
      pm.copy_from(p);
      imm.copy_from(im);
      pt.copy_from(p);
      it.copy_from(im);
      prog_i.apply(p, im, hp);
      test_i.apply(pt, it, ht);
      if (hp != ht) {
        log_i.apply(pm, imm, hp, ht);
        ob.enqueue(pm, imm);
      }
      it.set_out_port(DROP);
      ob.enqueue(p, im);
      ob.enqueue(pt, it);
    }
  }
}
Validate(C) main;
`

func compile(name, src string) *microp4.Module {
	m, err := microp4.CompileModule(name, src)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return m
}

func main() {
	// Show the compiler's §5.4 analysis first: the PDG slices and the
	// serialized Packet-Processing Schedule.
	prog, err := frontend.CompileModule("validate.up4", validateSrc)
	if err != nil {
		log.Fatal(err)
	}
	g := pdg.Build(prog)
	pps, err := g.BuildPPS()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Packet-Processing Schedule (§5.4):")
	for _, th := range pps.Threads {
		fmt.Printf("  thread %-5s nodes %v\n", th.Pkt, th.Nodes)
	}
	fmt.Printf("  edges %v  order %v\n\n", pps.Edges, pps.Order)
	_ = eval.Fig13Src // the same shape as the paper's Fig. 13

	dp, err := microp4.Build(compile("validate.up4", validateSrc),
		compile("prod.up4", prodSrc), compile("test.up4", testSrc), compile("log.up4", logSrc))
	if err != nil {
		log.Fatal(err)
	}
	if ok, why := dp.Composed(); !ok {
		fmt.Printf("running on the reference engine: %v\n\n", why)
	}
	sw := dp.NewSwitchWith(microp4.EngineReference)

	for _, ttl := range []uint8{64, 128, 10} {
		in := pkt.NewBuilder().
			IPv4(pkt.IPv4Opts{TTL: ttl, Protocol: 6, Src: 0x0A000001, Dst: 0x0A000002}).
			TCP(1, 2).Bytes()
		out, err := sw.Process(in, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ttl=%-3d -> %d packet(s):", ttl, len(out))
		for _, o := range out {
			fmt.Printf("  [port %d ttl=%d]", o.Port, o.Data[8])
		}
		fmt.Println()
		for _, d := range sw.Digests() {
			fmt.Printf("        digest: result %d reported to the control plane\n", d)
		}
	}
}
