package microp4

import (
	"errors"

	"microp4/internal/sim"
	"microp4/internal/trace"
)

// SetTracing attaches (or, with nil, detaches) a distributed-tracing
// flight recorder. With a recorder attached, ProcessHop records one
// "hop" span per packet — parse/table/deparse detail, disposition, and
// output ports — and ProcessBatch records the same spans through
// per-worker staging buffers. Engine faults additionally pin a dump of
// the faulting packet bytes and the spans leading up to it (see
// trace.Recorder.Faults). With no recorder attached the packet path
// carries no tracing work beyond one atomic load.
func (s *Switch) SetTracing(rec *trace.Recorder) { s.tracer.Store(rec) }

// Tracing returns the recorder attached by SetTracing, or nil.
func (s *Switch) Tracing() *trace.Recorder { return s.tracer.Load() }

// ProcessHop is Process carrying a distributed-tracing context: the
// network names the trace the packet belongs to, the span it descends
// from, and the virtual-time facts of this hop (tick, queue depth).
// It returns the recorded hop span's id so the caller can parent
// downstream link spans under it. The queue depth is also surfaced to
// the dataplane as the QUEUE_DEPTH intrinsic — what telemetry.up4
// stamps in-band.
//
// Without a recorder attached it degrades to exactly Process (span id
// 0). Semantics (clock ticks, digests, recirculation, multicast) are
// identical to Process either way.
func (s *Switch) ProcessHop(pkt []byte, inPort uint64, hc trace.HopContext) ([]Output, uint64, error) {
	rec := s.tracer.Load()
	clock := s.clock.Add(1)
	if s.metrics != nil {
		s.metrics.Clock.Set(int64(clock))
	}
	meta := sim.Metadata{
		InPort:      inPort,
		InTimestamp: clock,
		PktLen:      uint64(len(pkt)),
		Qdepth:      hc.Qdepth,
	}
	var sp *trace.Span
	if rec != nil {
		sp = &trace.Span{
			TraceID:  hc.TraceID,
			SpanID:   rec.NextID(),
			ParentID: hc.ParentID,
			Kind:     "hop",
			Name:     hc.Node,
			Start:    hc.Tick,
			End:      hc.Tick,
			InPort:   inPort,
			Qdepth:   hc.Qdepth,
			Hop:      &sim.HopSpan{},
		}
		meta.Span = sp.Hop
	}
	ob := s.getOutBuf()
	err := s.processPacketInto(ob, s.live(), pkt, meta)
	var outs []Output
	if len(ob.outs) > 0 {
		outs = make([]Output, len(ob.outs))
		for i, o := range ob.outs {
			outs[i] = Output{Port: o.Port, Data: append([]byte(nil), o.Data...)}
		}
	}
	if len(ob.digests) > 0 {
		s.mu.Lock()
		s.digests = append(s.digests, ob.digests...)
		s.mu.Unlock()
	}
	s.obPool.Put(ob)
	if sp == nil {
		return outs, 0, err
	}
	if err != nil {
		sp.Hop.Disposition = "error"
		sp.Hop.Err = err.Error()
	}
	rec.Record(sp)
	var fault *sim.EngineFault
	if errors.As(err, &fault) {
		rec.NoteFault(sp, pkt)
	}
	return outs, sp.SpanID, err
}
