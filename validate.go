package microp4

import (
	"fmt"

	"microp4/internal/sim"
)

// MaxMulticastPorts bounds one multicast group's replication list —
// a sanity limit mirroring a real PRE's fanout, enforced by
// TrySetMulticastGroup and the ctrlplane agent.
const MaxMulticastPorts = 64

// ControlSchema is a ControlAPI indexed for O(1) validation of
// control-plane operations. Build one with ControlAPI.Schema; every
// Validate* method returns nil or a *ControlError (class
// sim.ClassControl) whose Kind names the reject class. Validation is
// deterministic: the same op against the same schema always yields the
// same verdict, which is what makes rejects safe to treat as permanent
// (non-retryable) failures.
type ControlSchema struct {
	tables map[string]*ControlTable
	// actions maps table → action name → schema; action names are fully
	// qualified just as AddEntry expects them.
	actions map[string]map[string]*ControlAction
}

// Schema returns the API indexed for validation.
func (a *ControlAPI) Schema() *ControlSchema {
	s := &ControlSchema{
		tables:  make(map[string]*ControlTable, len(a.Tables)),
		actions: make(map[string]map[string]*ControlAction, len(a.Tables)),
	}
	for i := range a.Tables {
		t := &a.Tables[i]
		s.tables[t.Name] = t
		acts := make(map[string]*ControlAction, len(t.Actions))
		for j := range t.Actions {
			acts[t.Actions[j].Name] = &t.Actions[j]
		}
		s.actions[t.Name] = acts
	}
	return s
}

// Table returns the schema of one table, or nil when unknown.
func (s *ControlSchema) Table(name string) *ControlTable { return s.tables[name] }

// ValidateAddEntry checks one AddEntry against the schema: the table
// must exist, the key count must match, every key must fit its column's
// width and match kind, the action must be selectable by the table, and
// the arguments must match the action's parameter list in arity and
// width.
func (s *ControlSchema) ValidateAddEntry(table string, keys []Key, action string, args []uint64) error {
	ct := s.tables[table]
	if ct == nil {
		return &sim.ControlError{Op: "add-entry", Table: table,
			Kind: sim.RejectUnknownTable, Reason: "no such table in the control schema"}
	}
	if len(keys) != len(ct.Keys) {
		return &sim.ControlError{Op: "add-entry", Table: table, Kind: sim.RejectKeyCount,
			Reason: fmt.Sprintf("got %d keys, table has %d", len(keys), len(ct.Keys))}
	}
	for i, k := range keys {
		if err := validateKey(table, "add-entry", k.k, ct.Keys[i]); err != nil {
			return err
		}
	}
	return s.validateActionCall("add-entry", table, action, args)
}

// ValidateSetDefault checks a default-action override.
func (s *ControlSchema) ValidateSetDefault(table, action string, args []uint64) error {
	if s.tables[table] == nil {
		return &sim.ControlError{Op: "set-default", Table: table,
			Kind: sim.RejectUnknownTable, Reason: "no such table in the control schema"}
	}
	return s.validateActionCall("set-default", table, action, args)
}

// ValidateClearTable checks that the table exists.
func (s *ControlSchema) ValidateClearTable(table string) error {
	if s.tables[table] == nil {
		return &sim.ControlError{Op: "clear-table", Table: table,
			Kind: sim.RejectUnknownTable, Reason: "no such table in the control schema"}
	}
	return nil
}

// ValidateSetMulticastGroup checks the PRE programming limits: group 0
// is reserved ("no replication"), and the replication list is bounded.
func (s *ControlSchema) ValidateSetMulticastGroup(gid uint64, ports []uint64) error {
	if gid == 0 {
		return &sim.ControlError{Op: "set-multicast", Kind: sim.RejectBadGroup,
			Reason: "group 0 is reserved (means no replication)"}
	}
	if len(ports) > MaxMulticastPorts {
		return &sim.ControlError{Op: "set-multicast", Kind: sim.RejectBadGroup,
			Reason: fmt.Sprintf("%d replication ports exceeds the limit of %d", len(ports), MaxMulticastPorts)}
	}
	return nil
}

func (s *ControlSchema) validateActionCall(op, table, action string, args []uint64) error {
	act := s.actions[table][action]
	if act == nil {
		return &sim.ControlError{Op: op, Table: table, Action: action,
			Kind: sim.RejectUnknownAction, Reason: "table cannot select this action"}
	}
	if len(args) != len(act.Params) {
		return &sim.ControlError{Op: op, Table: table, Action: action, Kind: sim.RejectArgArity,
			Reason: fmt.Sprintf("got %d args, action takes %d", len(args), len(act.Params))}
	}
	for i, p := range act.Params {
		if !fitsWidth(args[i], p.Width) {
			return &sim.ControlError{Op: op, Table: table, Action: action, Kind: sim.RejectArgWidth,
				Reason: fmt.Sprintf("arg %d (%s) value %#x exceeds bit<%d>", i, p.Name, args[i], p.Width)}
		}
	}
	return nil
}

// validateKey checks one match key against its column schema.
func validateKey(table, op string, k sim.RuntimeKey, col ControlKey) error {
	if k.DontCare {
		return nil
	}
	bad := func(reason string) error {
		return &sim.ControlError{Op: op, Table: table, Kind: sim.RejectKeyWidth,
			Reason: fmt.Sprintf("key %s (%s/%d): %s", col.Field, col.MatchKind, col.Width, reason)}
	}
	switch col.MatchKind {
	case "lpm":
		if k.PrefixLen < 0 || k.PrefixLen > col.Width {
			return bad(fmt.Sprintf("prefix length %d out of range", k.PrefixLen))
		}
	case "range":
		// Value..Mask is an inclusive range; both bounds must fit.
		if !fitsWidth(k.Mask, col.Width) {
			return bad(fmt.Sprintf("range upper bound %#x does not fit", k.Mask))
		}
	default: // exact, ternary
		if k.HasMask && !fitsWidth(k.Mask, col.Width) {
			return bad(fmt.Sprintf("mask %#x does not fit", k.Mask))
		}
	}
	if !fitsWidth(k.Value, col.Width) {
		return bad(fmt.Sprintf("value %#x does not fit", k.Value))
	}
	return nil
}

// fitsWidth reports whether v is representable in w bits.
func fitsWidth(v uint64, w int) bool {
	if w >= 64 {
		return true
	}
	if w <= 0 {
		return v == 0
	}
	return v>>uint(w) == 0
}
