package microp4_test

import (
	"errors"
	"sync"
	"testing"

	"microp4"
	"microp4/internal/netsim"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// TestProcessUnderControlPlaneChurn races Process on several goroutines
// against a churn injector rewriting tables and multicast groups on the
// SAME switch — the documented concurrency contract under -race. Typed
// errors are legitimate (churn installs garbage entries on purpose);
// panics or untyped errors are not.
func TestProcessUnderControlPlaneChurn(t *testing.T) {
	dp := compileLib(t, "P4")
	sw := dp.NewSwitch()
	sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
		[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", 100)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(100)},
		"forward", 0xAA0000000001, 0xBB0000000001, 1)

	churn := netsim.NewChurn(0xBEEF, sw, netsim.ChurnConfig{
		Tables: []string{"forward_tbl", "l3_i.ipv4_i.ipv4_lpm_tbl", "l3_i.ipv6_i.ipv6_lpm_tbl"},
		Actions: map[string]string{
			"forward_tbl":              "forward",
			"l3_i.ipv4_i.ipv4_lpm_tbl": "l3_i.ipv4_i.process",
			"l3_i.ipv6_i.ipv6_lpm_tbl": "l3_i.ipv6_i.process",
		},
		ArgCount: 3, ArgMax: 1 << 16,
		Groups: []uint64{1, 2},
		Ports:  []uint64{1, 2, 3, 4},
	})

	data := pkt.NewBuilder().
		Ethernet(0xFF, 0xEE, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 0x0B000001, Dst: 0x0A000042}).
		TCP(1234, 80).Bytes()

	const (
		workers = 4
		packets = 300
		churnN  = 1200
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < packets; i++ {
				if _, err := sw.Process(data, uint64(w)); err != nil {
					// Garbage churn entries may legally fault the
					// engines — but only through the typed taxonomy.
					if _, typed := sim.ClassOf(err); !typed {
						errCh <- err
						return
					}
					var ef *sim.EngineFault
					if errors.As(err, &ef) && ef.PanicValue != nil {
						errCh <- err // a recovered panic is still a bug here
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churnN; i++ {
			churn.Step()
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("process under churn: %v", err)
	}
	if churn.Ops() != churnN {
		t.Errorf("churn ops = %d, want %d", churn.Ops(), churnN)
	}
}
