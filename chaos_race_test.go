package microp4_test

import (
	"errors"
	"sync"
	"testing"

	"microp4"
	"microp4/internal/ctrlplane"
	"microp4/internal/lib"
	"microp4/internal/netsim"
	"microp4/internal/obs"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// TestProcessUnderControlPlaneChurn races Process on several goroutines
// against a churn injector rewriting tables and multicast groups on the
// SAME switch — the documented concurrency contract under -race. Typed
// errors are legitimate (churn installs garbage entries on purpose);
// panics or untyped errors are not.
func TestProcessUnderControlPlaneChurn(t *testing.T) {
	dp := compileLib(t, "P4")
	sw := dp.NewSwitch()
	sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
		[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", 100)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(100)},
		"forward", 0xAA0000000001, 0xBB0000000001, 1)

	churn := netsim.NewChurn(0xBEEF, sw, netsim.ChurnConfig{
		Tables: []string{"forward_tbl", "l3_i.ipv4_i.ipv4_lpm_tbl", "l3_i.ipv6_i.ipv6_lpm_tbl"},
		Actions: map[string]string{
			"forward_tbl":              "forward",
			"l3_i.ipv4_i.ipv4_lpm_tbl": "l3_i.ipv4_i.process",
			"l3_i.ipv6_i.ipv6_lpm_tbl": "l3_i.ipv6_i.process",
		},
		ArgCount: 3, ArgMax: 1 << 16,
		Groups: []uint64{1, 2},
		Ports:  []uint64{1, 2, 3, 4},
	})

	data := pkt.NewBuilder().
		Ethernet(0xFF, 0xEE, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 0x0B000001, Dst: 0x0A000042}).
		TCP(1234, 80).Bytes()

	const (
		workers = 4
		packets = 300
		churnN  = 1200
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < packets; i++ {
				if _, err := sw.Process(data, uint64(w)); err != nil {
					// Garbage churn entries may legally fault the
					// engines — but only through the typed taxonomy.
					if _, typed := sim.ClassOf(err); !typed {
						errCh <- err
						return
					}
					var ef *sim.EngineFault
					if errors.As(err, &ef) && ef.PanicValue != nil {
						errCh <- err // a recovered panic is still a bug here
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churnN; i++ {
			churn.Step()
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("process under churn: %v", err)
	}
	if churn.Ops() != churnN {
		t.Errorf("churn ops = %d, want %d", churn.Ops(), churnN)
	}
}

// TestBatchUnderControlPlaneCommit races the parallel batched ingress
// (PR 5) against the full distributed control plane: four-worker
// ProcessBatch loops on a switch whose tables are simultaneously
// rewritten by a churn injector AND by a live two-phase-commit
// transaction arriving over a lossy simulated network. The transaction
// must still commit; the dataplane may fault only through the typed
// taxonomy, and never via a recovered panic.
func TestBatchUnderControlPlaneCommit(t *testing.T) {
	dp := compileLib(t, "P4")
	sw := dp.NewSwitch()
	sw.EnableMetrics()
	sw.SetWorkers(4)

	const seed = 0xC0FFEE
	n := netsim.New(seed)
	metrics := ctrlplane.NewMetrics(obs.NewRegistry())
	client, err := ctrlplane.NewClient(n, "ctrl", ctrlplane.Config{Seed: seed, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	agent := ctrlplane.NewAgent(sw, ctrlplane.AgentConfig{
		Name: "s1", CtrlPort: 9, Metrics: metrics, Bus: n.Bus(),
	})
	if err := n.AddSwitch("s1", agent); err != nil {
		t.Fatal(err)
	}
	if err := client.AddPeer("s1", 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("ctrl", 1, "s1", 9, netsim.FaultModel{Drop: 0.05, Duplicate: 0.05}); err != nil {
		t.Fatal(err)
	}

	churn := netsim.NewChurn(0xFACE, sw, netsim.ChurnConfig{
		Tables: []string{"forward_tbl", "l3_i.ipv4_i.ipv4_lpm_tbl"},
		Actions: map[string]string{
			"forward_tbl":              "forward",
			"l3_i.ipv4_i.ipv4_lpm_tbl": "l3_i.ipv4_i.process",
		},
		ArgCount: 3, ArgMax: 1 << 16,
		Groups: []uint64{1},
		Ports:  []uint64{1, 2, 3},
	})

	batch := batchTraffic(64)
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, br := range sw.ProcessBatch(batch, uint64(w)) {
					if br.Err == nil {
						continue
					}
					if _, typed := sim.ClassOf(br.Err); !typed {
						errCh <- br.Err
						return
					}
					var ef *sim.EngineFault
					if errors.As(br.Err, &ef) && ef.PanicValue != nil {
						errCh <- br.Err
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 600; i++ {
			churn.Step()
		}
	}()

	ops := []ctrlplane.TxnOp{
		{Peer: "s1", Op: ctrlplane.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
			[]ctrlplane.CtrlKey{ctrlplane.LPM(lib.NetA, 8)}, "l3_i.ipv4_i.process", lib.NhA)},
		{Peer: "s1", Op: ctrlplane.AddEntry("forward_tbl",
			[]ctrlplane.CtrlKey{ctrlplane.Exact(lib.NhA)}, "forward", lib.DmacA, lib.SmacA, lib.PortA)},
	}
	var result *ctrlplane.TxnResult
	if err := client.Transaction(ops, func(r ctrlplane.TxnResult) { result = &r }); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(0); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("batch under 2PC commit: %v", err)
	}
	if result == nil {
		t.Fatal("network went quiet without resolving the transaction")
	}
	if !result.Committed {
		t.Fatalf("transaction did not commit: %v", result.Err())
	}
}
