package microp4

import "microp4/internal/sim"

// The runtime's typed error taxonomy, re-exported so users of the
// public API can match Switch.Process failures without importing
// internal packages:
//
//	var fault *microp4.EngineFault
//	if errors.As(err, &fault) { ... }
//
// or coarsely by class:
//
//	if errors.Is(err, microp4.ErrRecirc) { ... }
//
// Process is panic-free on arbitrary input: engine panics surface as
// *EngineFault (with PanicValue and Stack set) instead of crashing the
// switch, and are counted in up4_engine_faults_total when metrics are
// enabled.
type (
	// ParseError reports a parser machinery failure (distinct from a
	// plain reject, which drops the packet without error).
	ParseError = sim.ParseError
	// DeparseError reports a deparser failure.
	DeparseError = sim.DeparseError
	// TableError reports table/action/register state inconsistent with
	// the program.
	TableError = sim.TableError
	// EngineFault reports an internal engine fault, including panics
	// recovered at the Process boundary.
	EngineFault = sim.EngineFault
	// RecircBudgetError reports a packet that exceeded
	// Switch.MaxRecirculations.
	RecircBudgetError = sim.RecircBudgetError
	// ControlError reports a control-plane operation rejected by schema
	// validation (Switch.TryAddEntry and friends, or the ctrlplane
	// agent). Kind carries the reject class (sim.RejectUnknownTable ...).
	ControlError = sim.ControlError
	// FlowError reports a flow-table failure: an extern dispatch against
	// an undeclared flowtable instance, or a FlowSync replication entry
	// the table cannot admit.
	FlowError = sim.FlowError
	// UpgradeError reports an in-service upgrade failure: a generation
	// stage/canary/cutover precondition violated, a canary divergence,
	// or a rollback (Switch.StageGeneration and friends, the issu state
	// machine).
	UpgradeError = sim.UpgradeError
)

// Class sentinels for errors.Is.
var (
	ErrParse   = sim.ErrParse
	ErrDeparse = sim.ErrDeparse
	ErrTable   = sim.ErrTable
	ErrEngine  = sim.ErrEngine
	ErrRecirc  = sim.ErrRecirc
	ErrControl = sim.ErrControl
	ErrFlow    = sim.ErrFlow
	ErrUpgrade = sim.ErrUpgrade
)
