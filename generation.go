package microp4

import (
	"fmt"
	"sync"

	"microp4/internal/equiv"
	"microp4/internal/sim"
)

// This file is the switch half of in-service upgrade (ISSU): staging a
// second compiled program as an immutable generation, shadow-canarying
// live traffic through it, and atomically cutting over (or discarding
// it). The upgrade state machine that drives these steps over the
// control network lives in internal/issu.

// Generation returns the live generation's sequence number (1 for a
// freshly built switch, incremented by every adopted cutover).
func (s *Switch) Generation() uint64 { return s.live().seq }

// StagedGeneration returns the staged generation's sequence number, or
// 0 when nothing is staged.
func (s *Switch) StagedGeneration() uint64 {
	if g := s.staged.Load(); g != nil {
		return g.seq
	}
	return 0
}

// StageGeneration builds a new generation from dp — fresh engines,
// fresh extern state — and stages it without touching live traffic.
// Control-plane table state is carried over verbatim: entries naming
// tables the new program does not declare sit inert, entries naming
// actions it dropped surface as typed TableErrors on match (which the
// canary reports as a divergence). Flow state is carried at CutOver,
// not here, so it is current at adoption time. At most one generation
// may be staged; errors are *UpgradeError.
func (s *Switch) StageGeneration(dp *Dataplane) (uint64, error) {
	if dp == nil {
		return 0, &UpgradeError{Phase: "stage", Reason: "nil dataplane"}
	}
	if s.engine != EngineReference {
		if composed, cerr := dp.Composed(); !composed {
			return 0, &UpgradeError{Phase: "stage",
				Reason: fmt.Sprintf("program has no compiled pipeline: %v", cerr)}
		}
	}
	g := s.newGeneration(dp)
	g.tables.Restore(s.live().tables.Snapshot())
	if !s.staged.CompareAndSwap(nil, g) {
		return 0, &UpgradeError{Phase: "stage", Reason: "a generation is already staged"}
	}
	return g.seq, nil
}

// AbortStaged discards the staged generation and any running canary,
// reporting whether there was one. The live generation is untouched —
// rollback of a not-yet-adopted upgrade is exactly this.
func (s *Switch) AbortStaged() bool {
	s.canary.Store(nil)
	return s.staged.Swap(nil) != nil
}

// CanaryStatus reports the progress of a shadow canary.
type CanaryStatus struct {
	Active    bool   // a canary exists and is still mirroring
	Complete  bool   // the mirror budget was consumed (or a divergence ended it)
	Mirrored  uint64 // packets mirrored so far
	Remaining uint64 // packets left in the budget
	Diverged  bool
	Reason    string // first divergence, "" while clean
}

// canaryState mirrors live packets through the staged generation and
// compares the outcomes. A mutex serializes shadow processing: the
// staged generation is a single shadow stream regardless of how many
// goroutines drive the live side. With no canary installed the packet
// path pays one atomic load.
type canaryState struct {
	s *Switch
	g *generation // the staged (shadow) generation

	mu        sync.Mutex
	remaining int64
	mirrored  uint64
	done      bool
	reason    string   // first divergence, "" while clean
	paths     []string // flowtable paths compared after every mirrored packet
}

// StartCanary starts mirroring the next n live packets through the
// staged generation, byte-comparing outputs, digests, error classes,
// and flow-table mutations after each. The shadow's flow state is
// seeded from the live tables so both generations judge packets from
// the same base. The canary is sound when packets are processed one at
// a time (the netsim/Process path); under parallel batches interleaving
// can produce spurious divergence, which fails in the safe direction —
// rollback.
func (s *Switch) StartCanary(n int) error {
	g := s.staged.Load()
	if g == nil {
		return &UpgradeError{Phase: "canary", Reason: "no staged generation"}
	}
	if n <= 0 {
		return &UpgradeError{Phase: "canary", Gen: g.seq, Reason: "mirror budget must be positive"}
	}
	live := s.live()
	c := &canaryState{s: s, g: g, remaining: int64(n)}
	if pl := g.dp.res.Pipeline; pl != nil {
		for i := range pl.FlowTables {
			path := pl.FlowTables[i].Name
			lft := s.flowTable(live, path)
			sft := s.flowTable(g, path)
			if lft == nil || sft == nil {
				continue // flowtable new in (or dropped by) this program
			}
			sft.RestoreSnapshot(lft.Snapshot())
			c.paths = append(c.paths, path)
		}
	}
	if !s.canary.CompareAndSwap(nil, c) {
		return &UpgradeError{Phase: "canary", Gen: g.seq, Reason: "a canary is already running"}
	}
	return nil
}

// CanaryStatus returns the canary's progress (the zero value when none
// is installed).
func (s *Switch) CanaryStatus() CanaryStatus {
	c := s.canary.Load()
	if c == nil {
		return CanaryStatus{}
	}
	return c.status()
}

// StopCanary detaches the canary, returning its final status (the zero
// value when none was running). The staged generation stays staged.
func (s *Switch) StopCanary() CanaryStatus {
	c := s.canary.Swap(nil)
	if c == nil {
		return CanaryStatus{}
	}
	return c.status()
}

func (c *canaryState) status() CanaryStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CanaryStatus{
		Active:   !c.done,
		Complete: c.done,
		Mirrored: c.mirrored,
		Diverged: c.reason != "",
		Reason:   c.reason,
	}
	if c.remaining > 0 {
		st.Remaining = uint64(c.remaining)
	}
	return st
}

// mirror replays one live packet through the shadow generation and
// compares the architecture-level outcomes plus the flow-table
// mutations. Called from processPacketInto with the live result already
// in hand; the live packet's fate is never affected.
func (c *canaryState) mirror(pkt []byte, meta sim.Metadata, live *outBuf, liveErr error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return
	}
	c.mirrored++
	c.remaining--
	// The shadow run is invisible to telemetry: no hop span, no
	// per-worker metrics shard (and the staged engines carry no metrics
	// until adoption).
	meta.Span = nil
	meta.M = nil
	ob := c.s.getOutBuf()
	shadowErr := c.s.archLoop(ob, c.g, pkt, meta)
	d := equiv.FirstOutcomeDiff(outcomeOf(live, liveErr), outcomeOf(ob, shadowErr))
	c.s.obPool.Put(ob)
	if d == "" {
		d = c.flowDiff()
	}
	if d != "" && c.reason == "" {
		c.reason = fmt.Sprintf("packet %d (tick %d): %s", c.mirrored, meta.InTimestamp, d)
		c.done = true
		return
	}
	if c.remaining <= 0 {
		c.done = true
	}
}

// outcomeOf views an architecture result as an equiv outcome. The
// slices alias ob's buffers — valid for the comparison, not retained.
func outcomeOf(ob *outBuf, err error) equiv.Outcome {
	o := equiv.Outcome{ErrClass: equiv.ErrClassOf(err), Digests: ob.digests}
	if len(ob.outs) > 0 {
		o.Out = make([]equiv.PortPacket, len(ob.outs))
		for i, out := range ob.outs {
			o.Out[i] = equiv.PortPacket{Port: out.Port, Data: out.Data}
		}
	}
	return o
}

// flowDiff compares the live and shadow generations' flow tables:
// entry count, then key/state/expiry per entry in insertion order.
// Sync marks are replication bookkeeping, not program behavior, and are
// ignored.
func (c *canaryState) flowDiff() string {
	live := c.s.live()
	for _, path := range c.paths {
		lft := c.s.flowTable(live, path)
		sft := c.s.flowTable(c.g, path)
		if lft == nil || sft == nil {
			continue
		}
		le, se := lft.Entries(), sft.Entries()
		if len(le) != len(se) {
			return fmt.Sprintf("flowtable %s: %d vs %d entries", path, len(le), len(se))
		}
		for i := range le {
			if le[i].Key != se[i].Key || le[i].State != se[i].State || le[i].Expire != se[i].Expire {
				return fmt.Sprintf("flowtable %s entry %d: %+v/%d/exp%d vs %+v/%d/exp%d", path, i,
					le[i].Key, le[i].State, le[i].Expire, se[i].Key, se[i].State, se[i].Expire)
			}
		}
	}
	return ""
}

// CutOver atomically adopts the staged generation: the flow state is
// re-snapshotted from the live tables (so it is current at adoption,
// regardless of how long ago the canary seeded its shadow copy), the
// switch's metrics attach to the new engines, and the generation
// pointer swings — in-flight packets finish on the old generation, the
// next packet boundary adopts the new one. A diverged canary refuses
// the cutover with a typed *UpgradeError; a clean or absent canary is
// detached. Registers are not carried (they belong to the packets, not
// the controller — the same contract as Checkpoint).
func (s *Switch) CutOver() (uint64, error) {
	g := s.staged.Load()
	if g == nil {
		return 0, &UpgradeError{Phase: "cutover", Reason: "no staged generation"}
	}
	if c := s.canary.Load(); c != nil {
		st := c.status()
		if st.Diverged {
			return 0, &UpgradeError{Phase: "cutover", Gen: g.seq,
				Reason: "canary diverged: " + st.Reason}
		}
		s.canary.Store(nil)
	}
	live := s.live()
	if pl := live.dp.res.Pipeline; pl != nil {
		for i := range pl.FlowTables {
			path := pl.FlowTables[i].Name
			lft := s.flowTable(live, path)
			sft := s.flowTable(g, path)
			if lft == nil || sft == nil {
				continue
			}
			sft.RestoreSnapshot(lft.Snapshot())
		}
	}
	s.attachMetrics(g)
	s.gen.Store(g)
	s.staged.Store(nil)
	return g.seq, nil
}
