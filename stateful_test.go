package microp4_test

import (
	"testing"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/pkt"
)

const statefulTestMain = `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct ethhdr_t { ethernet_h eth; }

FlowCount(pkt p, im_t im, in bit<32> threshold, out bit<32> count);

program CounterSwitch : implements Unicast {
  parser P(extractor ex, pkt p, out ethhdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout ethhdr_t h, inout empty_t m, im_t im) {
    bit<32> count;
    FlowCount() fc_i;
    apply {
      count = 0;
      if (h.eth.etherType == 0x0800) {
        fc_i.apply(p, im, 2, count);
      }
      im.set_out_port(1);
    }
  }
  control D(emitter em, pkt p, in ethhdr_t h) { apply { em.emit(p, h.eth); } }
}
CounterSwitch(P, C, D) main;
`

// TestStatefulRegisters exercises the §8.2 extension on both engines:
// register state persists across packets, the digest fires exactly once
// at the threshold, and the control plane can read the cells.
func TestStatefulRegisters(t *testing.T) {
	fcSrc, err := lib.ModuleSource("FlowCount")
	if err != nil {
		t.Fatal(err)
	}
	fc, err := microp4.CompileModule("flowcount.up4", fcSrc)
	if err != nil {
		t.Fatal(err)
	}
	main, err := microp4.CompileModule("counter.up4", statefulTestMain)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := microp4.Build(main, fc)
	if err != nil {
		t.Fatal(err)
	}
	packet := pkt.NewBuilder().
		Ethernet(1, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 5, Protocol: 17, Src: 0x01020307, Dst: 9}).
		UDP(1, 2, 8).Bytes()

	for _, engine := range []microp4.Engine{microp4.EngineCompiled, microp4.EngineReference} {
		sw := dp.NewSwitchWith(engine)
		var digests []uint64
		for i := 0; i < 5; i++ {
			if _, err := sw.Process(packet, 3); err != nil {
				t.Fatalf("engine %v pkt %d: %v", engine, i, err)
			}
			digests = append(digests, sw.Digests()...)
		}
		// Threshold 2: exactly one digest, carrying the source address.
		if len(digests) != 1 || digests[0] != 0x01020307 {
			t.Errorf("engine %v: digests = %v, want exactly [0x01020307]", engine, digests)
		}
		// Index = low 8 bits of srcAddr = 7; five packets counted.
		v, err := sw.ReadRegister("fc_i.counters", 7)
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		if v != 5 {
			t.Errorf("engine %v: counters[7] = %d, want 5", engine, v)
		}
		// A non-IPv4 packet must not touch state.
		arp := pkt.NewBuilder().Ethernet(1, 2, 0x0806).Payload([]byte{1}).Bytes()
		if _, err := sw.Process(arp, 3); err != nil {
			t.Fatal(err)
		}
		if v, _ := sw.ReadRegister("fc_i.counters", 7); v != 5 {
			t.Errorf("engine %v: ARP packet changed register state", engine)
		}
	}
}
