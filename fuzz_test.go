package microp4_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/pkt"
)

// fuzzEngines lazily builds one P4 dataplane with both engines behind
// identical rules. The router composition (parser chain, two LPM
// modules, deparser) is the widest attack surface in the library, and
// P4 is stateless, so one switch pair serves every fuzz iteration.
var (
	fuzzOnce sync.Once
	fuzzCmp  *microp4.Switch
	fuzzRef  *microp4.Switch
	fuzzErr  error
)

func fuzzEngines() (*microp4.Switch, *microp4.Switch, error) {
	fuzzOnce.Do(func() {
		t := &fuzzTB{}
		defer func() {
			if r := recover(); r != nil {
				fuzzErr = fmt.Errorf("building fuzz dataplane: %v", r)
			}
		}()
		dp := compileLib(t, "P4")
		install := func(sw *microp4.Switch) {
			sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
				[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", 100)
			sw.AddEntry("l3_i.ipv6_i.ipv6_lpm_tbl",
				[]microp4.Key{microp4.LPM(0xFD00000000000000, 16)}, "l3_i.ipv6_i.process", 200)
			sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(100)},
				"forward", 0xAA0000000001, 0xBB0000000001, 1)
			sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(200)},
				"forward", 0xAA0000000002, 0xBB0000000002, 2)
		}
		fuzzCmp = dp.NewSwitchWith(microp4.EngineCompiled)
		fuzzRef = dp.NewSwitchWith(microp4.EngineReference)
		install(fuzzCmp)
		install(fuzzRef)
	})
	return fuzzCmp, fuzzRef, fuzzErr
}

// fuzzTB adapts compileLib's testing.TB dependency to the build-once
// path: a compile failure panics into fuzzErr instead of failing one
// arbitrary fuzz iteration.
type fuzzTB struct{ testing.TB }

func (*fuzzTB) Helper()                         {}
func (*fuzzTB) Fatal(args ...any)               { panic(fmt.Sprint(args...)) }
func (*fuzzTB) Fatalf(format string, a ...any)  { panic(fmt.Sprintf(format, a...)) }
func (*fuzzTB) Errorf(format string, a ...any)  { panic(fmt.Sprintf(format, a...)) }

// fuzzP11Engines lazily builds the P11 load-balancer switch pair with
// the full evaluation rule set. Unlike P4, P11 is stateful: the shared
// flowtable accumulates pinned flows across iterations, which is
// exactly the point — the differential check must hold on every
// reachable flow-state, not just a cold table. Both engines see the
// identical input sequence, so their states evolve in lockstep.
var (
	fuzzP11Once sync.Once
	fuzzP11Cmp  *microp4.Switch
	fuzzP11Ref  *microp4.Switch
	fuzzP11Err  error
)

func fuzzP11Engines() (*microp4.Switch, *microp4.Switch, error) {
	fuzzP11Once.Do(func() {
		t := &fuzzTB{}
		defer func() {
			if r := recover(); r != nil {
				fuzzP11Err = fmt.Errorf("building P11 fuzz dataplane: %v", r)
			}
		}()
		dp := compileLib(t, "P11")
		fuzzP11Cmp = dp.NewSwitchWith(microp4.EngineCompiled)
		fuzzP11Ref = dp.NewSwitchWith(microp4.EngineReference)
		installLibRules(fuzzP11Cmp, "P11")
		installLibRules(fuzzP11Ref, "P11")
	})
	return fuzzP11Cmp, fuzzP11Ref, fuzzP11Err
}

// FuzzProcessP11 is the stateful differential target: arbitrary bytes
// through the load balancer on both engines, with VIP traffic seeding
// the corpus so the mutator reaches the hash → stick → rewrite →
// checksum pipeline, not just the parser.
func FuzzProcessP11(f *testing.F) {
	vip := pkt.NewBuilder().
		Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 0x0A000001, Dst: lib.VipAddr}).
		TCP(33000, lib.VipPort).Payload([]byte("GET ")).Bytes()
	f.Add(vip, uint16(0))
	f.Add(vip[:30], uint16(1)) // truncated mid-TCP
	ssh := pkt.NewBuilder().
		Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 0x0A000002, Dst: 0x14000001}).
		TCP(5555, 22).Bytes()
	f.Add(ssh, uint16(2))
	udp := pkt.NewBuilder().
		Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 17, Src: 0x0A000003, Dst: lib.VipAddr}).
		UDP(4444, lib.VipPort, 8).Bytes()
	f.Add(udp, uint16(3))
	f.Add([]byte{}, uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, port uint16) {
		if len(data) > 4096 {
			t.Skip("oversized")
		}
		cmp, ref, err := fuzzP11Engines()
		if err != nil {
			t.Fatal(err)
		}
		in := append([]byte(nil), data...)
		oc, errC := cmp.Process(in, uint64(port))
		or, errR := ref.Process(in, uint64(port))
		if errC != nil || errR != nil {
			t.Fatalf("engines errored on fuzz input: compiled=%v reference=%v\n%s",
				errC, errR, pkt.Dump(data))
		}
		if !bytes.Equal(in, data) {
			t.Fatalf("Process mutated its input buffer\n%s", pkt.Dump(data))
		}
		if len(oc) != len(or) {
			t.Fatalf("engines disagree: %d vs %d outputs\n%s", len(oc), len(or), pkt.Dump(data))
		}
		for i := range oc {
			if oc[i].Port != or[i].Port || !bytes.Equal(oc[i].Data, or[i].Data) {
				t.Fatalf("output %d disagrees: port %d vs %d\ncompiled:  %s\nreference: %s\nin: %s",
					i, oc[i].Port, or[i].Port, pkt.Dump(oc[i].Data), pkt.Dump(or[i].Data), pkt.Dump(data))
			}
		}
	})
}

// FuzzProcess feeds arbitrary bytes to Switch.Process on BOTH engines
// and cross-checks them: identical outputs, no panics (the recover path
// would surface as an EngineFault error), and no spurious errors —
// malformed packets must parse-reject into clean drops, never crash.
func FuzzProcess(f *testing.F) {
	valid := pkt.NewBuilder().
		Ethernet(0xFF, 0xEE, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 0x0B000001, Dst: 0x0A000042}).
		TCP(1234, 80).Payload([]byte("seed")).Bytes()
	f.Add(valid, uint16(0))
	f.Add(valid[:20], uint16(1))   // truncated mid-IPv4
	f.Add([]byte{}, uint16(0))     // empty
	f.Add([]byte{0xFF}, uint16(7)) // one byte
	v6 := pkt.NewBuilder().
		Ethernet(1, 2, pkt.EtherTypeIPv6).
		IPv6(pkt.IPv6Opts{NextHdr: 59, HopLimit: 3, SrcHi: 0xFD00000000000001, DstHi: 0xFD00000000000002}).
		Bytes()
	f.Add(v6, uint16(2))

	f.Fuzz(func(t *testing.T, data []byte, port uint16) {
		if len(data) > 4096 {
			t.Skip("oversized")
		}
		cmp, ref, err := fuzzEngines()
		if err != nil {
			t.Fatal(err)
		}
		in := append([]byte(nil), data...)
		oc, errC := cmp.Process(in, uint64(port))
		or, errR := ref.Process(in, uint64(port))
		if errC != nil || errR != nil {
			t.Fatalf("engines errored on fuzz input: compiled=%v reference=%v\n%s",
				errC, errR, pkt.Dump(data))
		}
		if !bytes.Equal(in, data) {
			t.Fatalf("Process mutated its input buffer\n%s", pkt.Dump(data))
		}
		if len(oc) != len(or) {
			t.Fatalf("engines disagree: %d vs %d outputs\n%s", len(oc), len(or), pkt.Dump(data))
		}
		for i := range oc {
			if oc[i].Port != or[i].Port || !bytes.Equal(oc[i].Data, or[i].Data) {
				t.Fatalf("output %d disagrees: port %d vs %d\ncompiled:  %s\nreference: %s\nin: %s",
					i, oc[i].Port, or[i].Port, pkt.Dump(oc[i].Data), pkt.Dump(or[i].Data), pkt.Dump(data))
			}
		}
	})
}
