package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"microp4"
	"microp4/internal/issu"
	"microp4/internal/lib"
	"microp4/internal/netsim"
	"microp4/internal/obs"
	"microp4/internal/sim"
)

// upgradeOpts collects the -upgrade flag values (the fault model is
// shared with -chaos).
type upgradeOpts struct {
	seed    uint64
	model   netsim.FaultModel
	canaryN uint64
	verbose bool
}

// upgradeSide is one half of the -upgrade spec: a library program name
// (P1..P11) or a µP4 main-module source file.
type upgradeSide struct {
	name string      // display name (program or file base name)
	main issu.Module // main module source
	lib  bool        // true when name is a library program
}

func resolveUpgradeSide(spec string) (upgradeSide, error) {
	if m, err := lib.Program(spec); err == nil {
		src, err := lib.Source(m.MainFile)
		if err != nil {
			return upgradeSide{}, err
		}
		return upgradeSide{name: spec, main: issu.Module{Name: m.MainFile, Source: src}, lib: true}, nil
	}
	// Not a catalog program: a source file, embedded (up4/x.up4) or on
	// disk.
	src, err := lib.Source(spec)
	if err != nil {
		data, ferr := os.ReadFile(spec)
		if ferr != nil {
			return upgradeSide{}, fmt.Errorf("%q is neither a library program nor a readable file: %v", spec, ferr)
		}
		src = string(data)
	}
	return upgradeSide{name: filepath.Base(spec), main: issu.Module{Name: filepath.Base(spec), Source: src}}, nil
}

// libModules ships a catalog program's library modules as wire modules.
func libModules(program string) ([]issu.Module, error) {
	m, err := lib.Program(program)
	if err != nil {
		return nil, err
	}
	var out []issu.Module
	for _, name := range m.Modules {
		src, err := lib.ModuleSource(name)
		if err != nil {
			return nil, err
		}
		out = append(out, issu.Module{Name: name + ".up4", Source: src})
	}
	return out, nil
}

// runUpgrade demonstrates an in-service upgrade end to end: a switch
// running the old program serves timer-driven traffic while a
// coordinator stages the new program over a lossy control channel,
// shadow-canaries it against the live generation, and either commits
// the cutover or rolls back on divergence. The spec is "old,new" where
// each side is a library program name or a .up4 main-module file; at
// least one side must be a library program (it donates the module set
// and the rule plan).
func runUpgrade(spec, engine string, o upgradeOpts) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-upgrade wants old,new (got %q)", spec)
	}
	oldSide, err := resolveUpgradeSide(strings.TrimSpace(parts[0]))
	if err != nil {
		return err
	}
	newSide, err := resolveUpgradeSide(strings.TrimSpace(parts[1]))
	if err != nil {
		return err
	}
	moduleDonor := ""
	switch {
	case oldSide.lib:
		moduleDonor = oldSide.name
	case newSide.lib:
		moduleDonor = newSide.name
	default:
		return fmt.Errorf("-upgrade needs at least one library program side to resolve modules")
	}
	modules, err := libModules(moduleDonor)
	if err != nil {
		return err
	}

	// Build and program the running (old) generation.
	oldMain, err := microp4.CompileModule(oldSide.main.Name, oldSide.main.Source)
	if err != nil {
		return fmt.Errorf("old program: %w", err)
	}
	var mods []*microp4.Module
	for _, wm := range modules {
		mod, err := microp4.CompileModule(wm.Name, wm.Source)
		if err != nil {
			return fmt.Errorf("%s: %w", wm.Name, err)
		}
		mods = append(mods, mod)
	}
	dp, err := microp4.Build(oldMain, mods...)
	if err != nil {
		return fmt.Errorf("old program: %w", err)
	}
	eng := microp4.EngineCompiled
	if engine == "reference" {
		eng = microp4.EngineReference
	}
	sw := dp.NewSwitchWith(eng)
	if oldSide.lib {
		installRules(sw, oldSide.name)
	}

	// Wire the upgrade channel over the lossy network.
	const upgradePort, coordPort = 9, 1
	n := netsim.New(o.seed)
	reg := obs.NewRegistry()
	metrics := issu.NewMetrics(reg)
	if o.verbose {
		n.OnFault(func(e netsim.FaultEvent) { fmt.Println("  fault:", e) })
		n.Bus().Subscribe(func(e sim.TraceEvent) {
			if e.Kind == "issu" {
				fmt.Printf("  issu: %-6s %-12s %s\n", e.Module, e.Name, e.Detail)
			}
		})
	}
	agent := issu.NewAgent("dut", sw, issu.AgentConfig{
		UpgradePort: upgradePort,
		Upgrader:    issu.UpgraderConfig{Metrics: metrics, Bus: n.Bus(), Now: n.Now},
	})
	if err := n.AddSwitch("dut", agent); err != nil {
		return err
	}
	coord, err := issu.NewCoordinator(n, "coord", issu.CoordinatorConfig{
		Seed: o.seed, CanaryN: o.canaryN, Metrics: metrics,
	})
	if err != nil {
		return err
	}
	if err := coord.AddPeer("dut", coordPort); err != nil {
		return err
	}
	if err := n.Connect("coord", coordPort, "dut", upgradePort, o.model); err != nil {
		return err
	}

	// Timer-driven traffic keeps the canary fed while the 2PC runs.
	donor := oldSide.name
	if !oldSide.lib {
		donor = moduleDonor
	}
	packets := trafficFor(donor)
	sent, stop := 0, false
	var tick func()
	tick = func() {
		if stop || sent >= 5000 {
			return
		}
		_ = n.Inject("dut", uint64(sent%4), packets[sent%len(packets)])
		sent++
		n.After(3, tick)
	}
	n.After(3, tick)

	canaryN := o.canaryN
	if canaryN == 0 {
		canaryN = 64
	}
	fmt.Printf("upgrade: %s -> %s, seed %#x, canary %d packets, model %+v\n",
		oldSide.name, newSide.name, o.seed, canaryN, o.model)

	var upErr error
	resolved := false
	if err := coord.Upgrade(newSide.name, newSide.main, modules, func(e error) {
		upErr, resolved, stop = e, true, true
	}); err != nil {
		return err
	}
	if _, err := n.Run(0); err != nil {
		return err
	}
	if !resolved {
		return fmt.Errorf("network went quiet without resolving the upgrade")
	}

	phase, _, canary := agent.Upgrader().Status()
	gen := sw.Generation()
	st := n.Stats()
	fmt.Printf("\ndata traffic during upgrade: %d packets\n", sent)
	fmt.Printf("switch state: phase=%s live-generation=%d canary{mirrored=%d diverged=%v}\n",
		phase, gen, canary.Mirrored, canary.Diverged)
	var kinds []string
	for k := range st.Faults {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  fault %-9s %d\n", k, st.Faults[netsim.FaultKind(k)])
	}
	fmt.Println("\nfinal upgrade metrics:")
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		return err
	}
	if upErr != nil {
		return fmt.Errorf("upgrade did not commit: %w", upErr)
	}
	fmt.Printf("\nupgrade committed: %s is live as generation %d\n", newSide.name, gen)
	return nil
}
