package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"

	"microp4"
	"microp4/internal/obs"
)

// obsServer serves a running switch's observability endpoints:
// /metrics (Prometheus text), /debug/vars (JSON), and /trace (the most
// recent trace events as newline-delimited JSON).
type obsServer struct {
	reg    *obs.Registry
	ring   *obs.Ring[microp4.TraceEvent]
	ln     net.Listener
	srv    *http.Server
	cancel func()
}

// startObs enables metrics on sw, attaches a trace ring, and serves the
// endpoints on addr (":0" picks a free port; see addr()).
func startObs(sw *microp4.Switch, addr string) (*obsServer, error) {
	o := &obsServer{
		reg:  sw.EnableMetrics(),
		ring: obs.NewRing[microp4.TraceEvent](256),
	}
	o.cancel = sw.Subscribe(o.ring.Push)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		o.cancel()
		return nil, err
	}
	o.ln = ln
	o.srv = &http.Server{Handler: obs.NewHandler(o.reg, o.writeTrace)}
	go func() { _ = o.srv.Serve(ln) }()
	return o, nil
}

func (o *obsServer) writeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range o.ring.Snapshot() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

func (o *obsServer) addr() string { return o.ln.Addr().String() }

func (o *obsServer) close() {
	o.cancel()
	_ = o.srv.Close()
}
