package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"

	"microp4"
	"microp4/internal/obs"
	"microp4/internal/trace"
)

// obsServer serves a running switch's observability endpoints:
// /metrics (Prometheus text), /debug/vars (JSON), /trace (the most
// recent trace events as newline-delimited JSON), and — when a flight
// recorder is attached — /trace/spans (the distributed-tracing ring as
// one up4trace/v1 JSON document).
type obsServer struct {
	reg    *obs.Registry
	ring   *obs.Ring[microp4.TraceEvent]
	ln     net.Listener
	srv    *http.Server
	cancel func()
}

// startObs enables metrics on sw, attaches a trace ring, and serves the
// endpoints on addr (":0" picks a free port; see addr()). A non-nil rec
// additionally exposes the span flight recorder at /trace/spans.
func startObs(sw *microp4.Switch, addr string, rec *trace.Recorder) (*obsServer, error) {
	o := &obsServer{
		reg:  sw.EnableMetrics(),
		ring: obs.NewRing[microp4.TraceEvent](256),
	}
	o.cancel = sw.Subscribe(o.ring.Push)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		o.cancel()
		return nil, err
	}
	var spans func(io.Writer) error
	if rec != nil {
		spans = rec.WriteJSON
	}
	o.ln = ln
	o.srv = &http.Server{Handler: obs.NewHandler(o.reg, o.writeTrace, spans)}
	go func() { _ = o.srv.Serve(ln) }()
	return o, nil
}

func (o *obsServer) writeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range o.ring.Snapshot() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

func (o *obsServer) addr() string { return o.ln.Addr().String() }

func (o *obsServer) close() {
	o.cancel()
	_ = o.srv.Close()
}
