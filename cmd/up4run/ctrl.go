package main

import (
	"fmt"
	"os"
	"sort"

	"microp4"
	"microp4/internal/ctrlplane"
	"microp4/internal/lib"
	"microp4/internal/netsim"
	"microp4/internal/obs"
	"microp4/internal/sim"
)

// ctrlOpts collects the -ctrl flag values (the fault model is shared
// with -chaos).
type ctrlOpts struct {
	seed     uint64
	switches int
	model    netsim.FaultModel
	verbose  bool
}

// runCtrl demonstrates the resilient control plane: a controller client
// pushes the program's standard rule set to every switch as one
// two-phase-commit transaction whose messages ride seed-driven lossy
// links. The run prints the retry/fault account and then proves
// convergence by diffing each switch's behavior against a directly
// programmed twin.
func runCtrl(program, engine string, o ctrlOpts) error {
	dp, err := buildDataplane(program)
	if err != nil {
		return err
	}
	eng := microp4.EngineCompiled
	if engine == "reference" {
		eng = microp4.EngineReference
	}

	n := netsim.New(o.seed)
	reg := obs.NewRegistry()
	metrics := ctrlplane.NewMetrics(reg)
	if o.verbose {
		n.OnFault(func(e netsim.FaultEvent) { fmt.Println("  fault:", e) })
		n.Bus().Subscribe(func(e sim.TraceEvent) {
			if e.Kind == "ctrl" {
				fmt.Printf("  ctrl: %-6s %-12s %s\n", e.Module, e.Name, e.Detail)
			}
		})
	}
	client, err := ctrlplane.NewClient(n, "ctrl", ctrlplane.Config{Seed: o.seed, Metrics: metrics})
	if err != nil {
		return err
	}
	const ctrlPort = 9
	switches := make(map[string]*microp4.Switch, o.switches)
	var names []string
	for i := 0; i < o.switches; i++ {
		name := fmt.Sprintf("s%d", i+1)
		names = append(names, name)
		sw := dp.NewSwitchWith(eng)
		sw.EnableMetrics()
		switches[name] = sw
		agent := ctrlplane.NewAgent(sw, ctrlplane.AgentConfig{
			Name: name, CtrlPort: ctrlPort, Metrics: metrics, Bus: n.Bus(),
		})
		if err := n.AddSwitch(name, agent); err != nil {
			return err
		}
		local := uint64(i + 1)
		if err := client.AddPeer(name, local); err != nil {
			return err
		}
		if err := n.Connect("ctrl", local, name, ctrlPort, o.model); err != nil {
			return err
		}
	}

	plan := rulePlan(program, names)
	fmt.Printf("ctrl: seed %#x, %d switches, model %+v\n", o.seed, o.switches, o.model)
	fmt.Printf("plan: %d ops as one transaction (the %s standard rule set)\n\n", len(plan), program)

	var result *ctrlplane.TxnResult
	if err := client.Transaction(plan, func(r ctrlplane.TxnResult) { result = &r }); err != nil {
		return err
	}
	if _, err := n.Run(0); err != nil {
		return err
	}
	if result == nil {
		return fmt.Errorf("network went quiet without resolving the transaction")
	}

	st := n.Stats()
	fmt.Printf("transaction %d: committed=%v, peer errors=%d\n", result.Txn, result.Committed, len(result.PeerErrs))
	for peer, err := range result.PeerErrs {
		fmt.Printf("  %s: %v\n", peer, err)
	}
	fmt.Printf("control traffic: %d deliveries, retries=%d, timeouts=%d\n",
		st.Steps, metrics.Retries.Value(), metrics.Timeouts.Value())
	var kinds []string
	for k := range st.Faults {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  fault %-9s %d\n", k, st.Faults[netsim.FaultKind(k)])
	}

	if result.Committed {
		fmt.Println("\nconvergence proof (behavior vs a directly programmed twin):")
		twin := dp.NewSwitchWith(eng)
		installRules(twin, program)
		packets := trafficFor(program)
		for _, name := range names {
			if diff := behaviorDiff(switches[name], twin, packets); diff != "" {
				fmt.Printf("  %s: DIVERGED: %s\n", name, diff)
			} else {
				fmt.Printf("  %s: identical forwarding on %d probe packets\n", name, len(packets))
			}
		}
	} else {
		fmt.Println("\ntransaction aborted: switches hold their pre-transaction state")
	}

	fmt.Println("\nfinal control-plane metrics:")
	return reg.WritePrometheus(os.Stdout)
}

// rulePlan converts the program's standard rule set into a transaction
// plan replicated to every named switch.
func rulePlan(program string, peers []string) []ctrlplane.TxnOp {
	t := sim.NewTables()
	lib.InstallDefaultRules(t, program, false)
	var ops []ctrlplane.TxnOp
	for _, peer := range peers {
		for _, name := range t.TableNames() {
			for _, e := range t.Entries(name) {
				keys := make([]ctrlplane.CtrlKey, len(e.Keys))
				for i, k := range e.Keys {
					switch {
					case k.DontCare:
						keys[i] = ctrlplane.Any()
					case k.HasMask:
						keys[i] = ctrlplane.Ternary(k.Value, k.Mask)
					case k.PrefixLen > 0:
						keys[i] = ctrlplane.LPM(k.Value, k.PrefixLen)
					default:
						keys[i] = ctrlplane.Exact(k.Value)
					}
				}
				ops = append(ops, ctrlplane.TxnOp{Peer: peer,
					Op: ctrlplane.AddEntry(name, keys, e.Action, e.Args...)})
			}
		}
	}
	return ops
}

// behaviorDiff runs the probe packets through both switches and
// reports the first divergence ("" when identical).
func behaviorDiff(a, b *microp4.Switch, packets [][]byte) string {
	for i, data := range packets {
		outA, errA := a.Process(data, uint64(i%4))
		outB, errB := b.Process(data, uint64(i%4))
		if (errA == nil) != (errB == nil) {
			return fmt.Sprintf("probe %d: errors differ (%v vs %v)", i, errA, errB)
		}
		if len(outA) != len(outB) {
			return fmt.Sprintf("probe %d: %d outputs vs %d", i, len(outA), len(outB))
		}
		for j := range outA {
			if outA[j].Port != outB[j].Port || string(outA[j].Data) != string(outB[j].Data) {
				return fmt.Sprintf("probe %d output %d differs", i, j)
			}
		}
	}
	return ""
}
