// Command up4run executes one of the library's composed programs
// (P1..P11) on the behavioral switch with the standard evaluation rule
// set, feeding it a canned packet mix and tracing what happens — a
// quick, simple_switch-style smoke test for the dataplane.
//
//	up4run -program P4
//	up4run -program P2 -engine reference -n 20
//
// With -chaos it instead wires several switch instances into a
// simulated network (the built-in three-hop line, or a -topo file) and
// runs the traffic through seed-driven lossy links with optional
// control-plane churn:
//
//	up4run -program P4 -chaos -seed 7 -chaos-drop 0.2 -chaos-flip 0.3
//	up4run -program P4 -chaos -topo ring.topo -chaos-churn 5 -chaos-v
//
// With -ctrl it instead exercises the resilient control plane: a
// controller pushes the program's standard rule set to every switch as
// one two-phase-commit transaction whose control messages ride the
// same lossy links (drop/dup/reorder/flip per the -chaos-* flags), then
// proves convergence against a directly programmed twin:
//
//	up4run -program P4 -ctrl -seed 7 -chaos-drop 0.15
//	up4run -program P2 -ctrl -ctrl-switches 5 -chaos-v
//
// With -upgrade old,new it performs an in-service upgrade: a switch
// running the old program keeps serving timer-driven traffic while a
// coordinator stages the new program over the same lossy links, shadow
// canaries it against the live generation, and commits the cutover (or
// rolls back on divergence). Each side is a library program name or a
// µP4 main-module file:
//
//	up4run -upgrade P9,up4/p9_fw_v2.up4 -seed 7 -chaos-drop 0.1
//	up4run -upgrade P9,mynew.up4 -upgrade-canary 128 -chaos-v
package main

import (
	"flag"
	"fmt"
	"os"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/netsim"
	"microp4/internal/pkt"
	"microp4/internal/sim"
	"microp4/internal/trace"
)

func main() {
	var (
		program  = flag.String("program", "P4", "library program to run (P1..P11)")
		engine   = flag.String("engine", "compiled", "execution engine: compiled or reference")
		count    = flag.Int("n", 8, "number of packets to send")
		trace    = flag.Bool("trace", false, "print per-packet execution traces (§8.2 debugging)")
		maddr    = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /trace on this address (e.g. :9090)")
		traceOut = flag.String("trace-out", "", "write the distributed-tracing flight recorder as JSON to this file on exit")

		chaos   = flag.Bool("chaos", false, "run a seeded chaos network instead of a single switch")
		ctrl    = flag.Bool("ctrl", false, "drive a transactional rule rollout over lossy control links")
		upgrade = flag.String("upgrade", "", "in-service upgrade: old,new (library program names or .up4 main files)")
		canaryN = flag.Uint64("upgrade-canary", 0, "upgrade: canary mirror budget in packets (0 = default)")
		ctrlSw  = flag.Int("ctrl-switches", 3, "ctrl: number of switches the transaction spans")
		seed    = flag.Uint64("seed", 1, "chaos: network seed (identical seed => identical fault sequence)")
		drop    = flag.Float64("chaos-drop", 0.1, "chaos: per-link packet drop probability")
		flip    = flag.Float64("chaos-flip", 0.1, "chaos: per-link bit-flip probability")
		dup     = flag.Float64("chaos-dup", 0.05, "chaos: per-link duplication probability")
		reorder = flag.Float64("chaos-reorder", 0.05, "chaos: per-link reorder probability")
		truncP  = flag.Float64("chaos-trunc", 0.05, "chaos: per-link truncation probability")
		partP   = flag.Float64("chaos-partition", 0, "chaos: per-packet probability of opening a seeded link-partition window")
		partLen = flag.Uint64("chaos-partition-len", 16, "chaos: partition window length in virtual ticks")
		churn   = flag.Int("chaos-churn", 0, "chaos: control-plane ops per delivered packet, per switch")
		topo    = flag.String("topo", "", "chaos: topology file (switch/link/inject lines); default three-hop line")
		chaosV  = flag.Bool("chaos-v", false, "chaos: print every fault event")
	)
	flag.Parse()
	var err error
	if *upgrade != "" {
		err = runUpgrade(*upgrade, *engine, upgradeOpts{
			seed:    *seed,
			canaryN: *canaryN,
			model: netsim.FaultModel{
				Drop: *drop, BitFlip: *flip, Duplicate: *dup, Reorder: *reorder, Truncate: *truncP,
				Partition: *partP, PartitionLen: *partLen,
			},
			verbose: *chaosV,
		})
	} else if *ctrl {
		err = runCtrl(*program, *engine, ctrlOpts{
			seed:     *seed,
			switches: *ctrlSw,
			model: netsim.FaultModel{
				Drop: *drop, BitFlip: *flip, Duplicate: *dup, Reorder: *reorder, Truncate: *truncP,
				Partition: *partP, PartitionLen: *partLen,
			},
			verbose: *chaosV,
		})
	} else if *chaos {
		err = runChaos(*program, *engine, chaosOpts{
			seed:  *seed,
			count: *count,
			model: netsim.FaultModel{
				Drop: *drop, BitFlip: *flip, Duplicate: *dup, Reorder: *reorder, Truncate: *truncP,
				Partition: *partP, PartitionLen: *partLen,
			},
			churn:    *churn,
			topo:     *topo,
			verbose:  *chaosV,
			traceOut: *traceOut,
		})
	} else {
		err = run(*program, *engine, *count, *trace, *maddr, *traceOut)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "up4run: %v\n", err)
		os.Exit(1)
	}
}

// buildDataplane compiles a library program and its modules through the
// public API.
func buildDataplane(program string) (*microp4.Dataplane, error) {
	m, err := lib.Program(program)
	if err != nil {
		return nil, err
	}
	src, err := lib.Source(m.MainFile)
	if err != nil {
		return nil, err
	}
	main, err := microp4.CompileModule(m.MainFile, src)
	if err != nil {
		return nil, err
	}
	var mods []*microp4.Module
	for _, name := range m.Modules {
		msrc, err := lib.ModuleSource(name)
		if err != nil {
			return nil, err
		}
		mod, err := microp4.CompileModule(name+".up4", msrc)
		if err != nil {
			return nil, err
		}
		mods = append(mods, mod)
	}
	return microp4.Build(main, mods...)
}

func run(program, engine string, count int, printTrace bool, metricsAddr, traceOut string) error {
	m, err := lib.Program(program)
	if err != nil {
		return err
	}
	dp, err := buildDataplane(program)
	if err != nil {
		return err
	}
	st := dp.Stats()
	fmt.Printf("%s (%s): modules %v\n", m.Name, m.Main, m.Modules)
	fmt.Printf("operational region: extract %dB, byte-stack %dB, min packet %dB\n",
		st.ExtractLength, st.ByteStack, st.MinPacket)
	fmt.Printf("control-plane tables: %v\n\n", dp.Tables())

	eng := microp4.EngineCompiled
	if engine == "reference" {
		eng = microp4.EngineReference
	}
	sw := dp.NewSwitchWith(eng)
	installRules(sw, program)
	var rec *trace.Recorder
	if traceOut != "" {
		rec = trace.NewRecorder(0)
		sw.SetTracing(rec)
	}
	if printTrace {
		sw.SetTracer(func(e microp4.TraceEvent) {
			mod := e.Module
			if mod == "" {
				mod = "main"
			}
			fmt.Printf("    trace: %5d %-12s %-16s %-40s %s\n", e.Seq, e.Kind, mod, e.Name, e.Detail)
		})
	}
	var srv *obsServer
	if metricsAddr != "" {
		srv, err = startObs(sw, metricsAddr, rec)
		if err != nil {
			return err
		}
		defer srv.close()
		endpoints := "/metrics /debug/vars /trace"
		if rec != nil {
			endpoints += " /trace/spans"
		}
		fmt.Printf("observability: http://%s%s\n\n", srv.addr(), endpoints)
	}

	packets := trafficFor(program)
	for i := 0; i < count; i++ {
		data := packets[i%len(packets)]
		var out []microp4.Output
		if rec != nil {
			// Each injected packet roots its own trace; the single switch
			// is the only hop.
			hc := trace.HopContext{TraceID: rec.NextID(), Node: "sw", Tick: uint64(i)}
			out, _, err = sw.ProcessHop(data, uint64(i%4), hc)
		} else {
			out, err = sw.Process(data, uint64(i%4))
		}
		if err != nil {
			return err
		}
		fmt.Printf("pkt %2d in  (%3dB): %s\n", i, len(data), trunc(pkt.Dump(data)))
		if len(out) == 0 {
			fmt.Printf("        -> dropped\n")
			continue
		}
		for _, o := range out {
			fmt.Printf("        -> port %d (%3dB): %s\n", o.Port, len(o.Data), trunc(pkt.Dump(o.Data)))
		}
	}
	if srv != nil {
		fmt.Println("\nfinal metrics:")
		if err := srv.reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	if traceOut != "" {
		return writeTraceOut(rec, traceOut)
	}
	return nil
}

// writeTraceOut dumps the flight recorder as one JSON document.
func writeTraceOut(rec *trace.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\ntrace: %d spans (%d engine-fault dumps) -> %s\n",
		rec.Len(), len(rec.Faults()), path)
	return nil
}

func trunc(s string) string {
	if len(s) > 96 {
		return s[:96] + "..."
	}
	return s
}

// installRules adapts the lib's rule installer to the public Switch.
func installRules(sw *microp4.Switch, program string) {
	t := sim.NewTables()
	lib.InstallDefaultRules(t, program, false)
	// The lib installer works on sim.Tables; replay through the public
	// API by reusing the same data. (Entries with priorities re-install
	// in order.)
	for _, name := range t.TableNames() {
		for _, e := range t.Entries(name) {
			keys := make([]microp4.Key, len(e.Keys))
			for i, k := range e.Keys {
				switch {
				case k.DontCare:
					keys[i] = microp4.Any()
				case k.HasMask:
					keys[i] = microp4.Ternary(k.Value, k.Mask)
				case k.PrefixLen > 0:
					keys[i] = microp4.LPM(k.Value, k.PrefixLen)
				default:
					keys[i] = microp4.Exact(k.Value)
				}
			}
			sw.AddEntry(name, keys, e.Action, e.Args...)
		}
	}
}

// trafficFor builds a representative packet mix for each program.
func trafficFor(program string) [][]byte {
	v4 := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 0xC0A80002, Dst: 0x0A000001}).
		TCP(1234, 80).Payload([]byte("hello")).Bytes()
	v4b := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 9, Protocol: pkt.ProtoUDP, Src: 0xC0A80003, Dst: 0x14000001}).
		UDP(53, 53, 13).Payload([]byte("udp")).Bytes()
	v6 := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv6).
		IPv6(pkt.IPv6Opts{NextHdr: 59, HopLimit: 32, SrcHi: 0xFD00000000000001,
			DstHi: lib.NetV6Hi, DstLo: 1}).Bytes()
	arp := pkt.NewBuilder().Ethernet(lib.DmacA, 2, 0x0806).Payload([]byte{0, 1}).Bytes()
	trunc := v4[:20]
	base := [][]byte{v4, v4b, v6, arp, trunc}
	switch program {
	case "P1":
		ssh := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 1, Dst: 2}).
			TCP(5555, 22).Bytes()
		return append(base, ssh)
	case "P2":
		mpls := pkt.NewBuilder().Ethernet(1, 2, pkt.EtherTypeMPLS).
			MPLS(1000, 0, true, 60).
			Payload(pkt.NewBuilder().IPv4(pkt.IPv4Opts{TTL: 5, Protocol: 6, Src: 1, Dst: 0x0A000002}).Bytes()).Bytes()
		return append(base, mpls)
	case "P7":
		srv6 := pkt.NewBuilder().Ethernet(1, 2, pkt.EtherTypeIPv6).
			IPv6(pkt.IPv6Opts{NextHdr: pkt.ProtoSRv6, HopLimit: 17, DstHi: 3, DstLo: 4}).
			SRv6(59, 1, [][2]uint64{{lib.NetV6Hi, 0x11}, {lib.NetV6Hi, 0x22}}).Bytes()
		return append(base, srv6)
	case "P8":
		// Telemetry-encapsulated IPv4: eth 0x1266, tel shim with zero
		// records, inner v4 toward both routed prefixes. Each traversed
		// switch prepends one 3-byte hop record.
		telA := pkt.NewBuilder().Ethernet(lib.DmacA, 2, 0x1266).
			Payload([]byte{0, 0x08, 0x00}).
			Payload(pkt.NewBuilder().
				IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 0xC0A80002, Dst: 0x0A000001}).
				TCP(1234, 80).Payload([]byte("int")).Bytes()).Bytes()
		telB := pkt.NewBuilder().Ethernet(lib.DmacA, 2, 0x1266).
			Payload([]byte{0, 0x08, 0x00}).
			Payload(pkt.NewBuilder().
				IPv4(pkt.IPv4Opts{TTL: 32, Protocol: pkt.ProtoUDP, Src: 0xC0A80003, Dst: 0x14000001}).
				UDP(53, 53, 11).Payload([]byte("udp")).Bytes()).Bytes()
		return append(base, telA, telB)
	case "P9":
		// A forward TCP flow from NetA toward NetB and its reverse twin:
		// the first learns a connection, the second exercises the
		// return-path allow through the flow table.
		fwd := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 0x0A000001, Dst: 0x14000001}).
			TCP(4321, 443).Payload([]byte("syn")).Bytes()
		rev := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 0x14000001, Dst: 0x0A000001}).
			TCP(443, 4321).Payload([]byte("ack")).Bytes()
		return append(base, fwd, rev)
	case "P10":
		// A NAT64 outbound flow from the bound v6 client, its v4 reply
		// toward the pool, and an IPv4-in-IPv4 tunnel terminating at
		// TunDst with a routable inner packet.
		n64 := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv6).
			IPv6(pkt.IPv6Opts{NextHdr: pkt.ProtoTCP, HopLimit: 64, PayloadLen: 23,
				SrcHi: lib.V6ClientHi, SrcLo: lib.V6ClientLo,
				DstHi: lib.Nat64PfxHi, DstLo: uint64(lib.NetB) | 1}).
			TCP(40000, 80).Payload([]byte("v6!")).Bytes()
		rep := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP,
				Src: uint32(lib.NetB) | 1, Dst: lib.Nat64Pool}).
			TCP(80, 40000).Payload([]byte("ack")).Bytes()
		inner := pkt.NewBuilder().
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP,
				Src: 0x08080801, Dst: uint32(lib.NetB) | 2, TotalLen: 43}).
			TCP(1234, 80).Payload([]byte("tun")).Bytes()
		tun := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 32, Protocol: 4, Src: 0x08080808, Dst: lib.TunDst,
				TotalLen: uint16(20 + len(inner))}).
			Payload(inner).Bytes()
		return append(base, n64, rep, tun)
	case "P11":
		// Two packets of one VIP connection (pin, then sticky hit) and a
		// direct :22 probe the ACL denies.
		vip := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 0x0A000001, Dst: lib.VipAddr}).
			TCP(33000, lib.VipPort).Payload([]byte("GET")).Bytes()
		ssh := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 0x0A000002, Dst: uint32(lib.NetB) | 1}).
			TCP(5555, 22).Payload([]byte("ssh")).Bytes()
		return append(base, vip, vip, ssh)
	}
	return base
}
