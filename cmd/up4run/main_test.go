package main

import "testing"

// Smoke-run every library program on both engines through the CLI's
// driver (stdout goes to the test log).
func TestRunAllPrograms(t *testing.T) {
	for _, prog := range []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7"} {
		for _, engine := range []string{"compiled", "reference"} {
			if err := run(prog, engine, 6, false); err != nil {
				t.Errorf("%s/%s: %v", prog, engine, err)
			}
		}
	}
}

func TestRunWithTrace(t *testing.T) {
	if err := run("P4", "compiled", 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownProgram(t *testing.T) {
	if err := run("P99", "compiled", 1, false); err == nil {
		t.Error("unknown program accepted")
	}
}
