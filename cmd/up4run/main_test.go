package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/netsim"
	"microp4/internal/pkt"
	"microp4/internal/trace"
)

// Smoke-run every library program on both engines through the CLI's
// driver (stdout goes to the test log).
func TestRunAllPrograms(t *testing.T) {
	for _, prog := range []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9"} {
		for _, engine := range []string{"compiled", "reference"} {
			if err := run(prog, engine, 6, false, "", ""); err != nil {
				t.Errorf("%s/%s: %v", prog, engine, err)
			}
		}
	}
}

func TestRunWithTrace(t *testing.T) {
	if err := run("P4", "compiled", 1, true, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMetricsAddr(t *testing.T) {
	if err := run("P4", "compiled", 4, false, "127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownProgram(t *testing.T) {
	if err := run("P99", "compiled", 1, false, "", ""); err == nil {
		t.Error("unknown program accepted")
	}
}

// TestRunTraceOut drives the single-switch runner with -trace-out: the
// file must parse under the up4trace/v1 schema and hold one hop span
// per processed packet.
func TestRunTraceOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	const n = 8
	if err := run("P4", "compiled", n, false, "", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	spans, faults, err := trace.ReadJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != n {
		t.Fatalf("trace holds %d spans, want %d", len(spans), n)
	}
	for _, sp := range spans {
		if sp.Kind != "hop" || sp.Hop == nil {
			t.Errorf("span %+v is not a hop span with engine detail", sp)
		}
	}
	if len(faults) != 0 {
		t.Errorf("clean run pinned %d fault dumps", len(faults))
	}
}

// TestChaosTraceOut drives the chaos runner with tracing: the export
// must parse and carry hop and link spans from the shared recorder.
func TestChaosTraceOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	err := runChaos("P4", "compiled", chaosOpts{
		seed:     7,
		count:    12,
		model:    netsim.FaultModel{Drop: 0.1, Duplicate: 0.05, Reorder: 0.05},
		traceOut: out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	spans, _, err := trace.ReadJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, sp := range spans {
		kinds[sp.Kind]++
	}
	if kinds["hop"] == 0 || kinds["link"] == 0 {
		t.Errorf("chaos trace kinds = %v, want hop and link spans", kinds)
	}
}

// TestTraceSpansEndpoint serves a switch with a flight recorder
// attached: /trace/spans must return the ring as a parseable
// up4trace/v1 document that grows with traffic.
func TestTraceSpansEndpoint(t *testing.T) {
	dp, err := buildDataplane("P4")
	if err != nil {
		t.Fatal(err)
	}
	sw := dp.NewSwitchWith(microp4.EngineCompiled)
	installRules(sw, "P4")
	rec := trace.NewRecorder(64)
	sw.SetTracing(rec)
	srv, err := startObs(sw, "127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()

	routed := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 0xC0A80002, Dst: 0x0A000001}).
		TCP(1234, 80).Bytes()
	const n = 5
	for i := 0; i < n; i++ {
		hc := trace.HopContext{TraceID: rec.NextID(), Node: "sw", Tick: uint64(i)}
		if _, _, err := sw.ProcessHop(routed, 1, hc); err != nil {
			t.Fatal(err)
		}
	}

	spans, faults, err := trace.ReadJSON([]byte(scrape(t, "http://"+srv.addr()+"/trace/spans")))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != n {
		t.Fatalf("/trace/spans holds %d spans, want %d", len(spans), n)
	}
	for _, sp := range spans {
		if sp.Kind != "hop" || sp.Name != "sw" || sp.Hop == nil {
			t.Errorf("unexpected span %+v", sp)
		}
	}
	if len(faults) != 0 {
		t.Errorf("clean run pinned %d fault dumps", len(faults))
	}
}

// scrape fetches url and returns its body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// parsePrometheus maps "name{labels}" → value for every sample line.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsEndpointMatchesTraffic is the acceptance check: serve the
// observability endpoints on a free port, run a scripted traffic mix,
// and assert the scraped /metrics per-table hit/miss and per-port
// packet/drop counters match counts derived from the run exactly.
func TestMetricsEndpointMatchesTraffic(t *testing.T) {
	dp, err := buildDataplane("P4")
	if err != nil {
		t.Fatal(err)
	}
	sw := dp.NewSwitchWith(microp4.EngineCompiled)
	installRules(sw, "P4")
	srv, err := startObs(sw, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	base := "http://" + srv.addr()

	routed := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 0xC0A80002, Dst: 0x0A000001}).
		TCP(1234, 80).Bytes()
	unrouted := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 0xC0A80002, Dst: 0xDEAD0001}).
		TCP(1234, 80).Bytes()

	// Scripted run: nRouted hits on port 1, nUnrouted LPM default/miss
	// drops on port 2. Expected tx counts come from Process's outputs.
	const nRouted, nUnrouted = 5, 3
	txPerPort := make(map[uint64]uint64)
	drops := make(map[uint64]uint64)
	for i := 0; i < nRouted; i++ {
		out, err := sw.Process(routed, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatal("routed packet dropped")
		}
		for _, o := range out {
			txPerPort[o.Port]++
		}
	}
	for i := 0; i < nUnrouted; i++ {
		out, err := sw.Process(unrouted, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatal("unrouted packet forwarded")
		}
		drops[2]++
	}

	metrics := parsePrometheus(t, scrape(t, base+"/metrics"))
	expect := map[string]float64{
		"up4_switch_packets_total":                                 nRouted + nUnrouted,
		"up4_port_rx_packets_total{port=\"1\"}":                    nRouted,
		"up4_port_rx_packets_total{port=\"2\"}":                    nUnrouted,
		"up4_table_hits_total{table=\"l3_i.ipv4_i.ipv4_lpm_tbl\"}": nRouted,
	}
	for port, n := range txPerPort {
		expect[fmt.Sprintf("up4_port_tx_packets_total{port=%q}", fmt.Sprint(port))] = float64(n)
	}
	for port, n := range drops {
		expect[fmt.Sprintf("up4_port_drops_total{port=%q}", fmt.Sprint(port))] = float64(n)
	}
	for name, want := range expect {
		if got, ok := metrics[name]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	// The unrouted packets run the LPM default action (or count as
	// misses), never as hits.
	lpmDefaults := metrics["up4_table_defaults_total{table=\"l3_i.ipv4_i.ipv4_lpm_tbl\"}"]
	lpmMisses := metrics["up4_table_misses_total{table=\"l3_i.ipv4_i.ipv4_lpm_tbl\"}"]
	if lpmDefaults+lpmMisses != nUnrouted {
		t.Errorf("lpm defaults+misses = %v+%v, want %d", lpmDefaults, lpmMisses, nUnrouted)
	}
	// Latency histogram saw every packet.
	if got := metrics["up4_packet_latency_ns_count"]; got != nRouted+nUnrouted {
		t.Errorf("latency count = %v, want %d", got, nRouted+nUnrouted)
	}

	// /debug/vars is valid JSON holding the same counter.
	var vars struct {
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(scrape(t, base+"/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	found := false
	for _, m := range vars.Metrics {
		if m.Name == "up4_switch_packets_total" {
			found = true
			if m.Value != nRouted+nUnrouted {
				t.Errorf("/debug/vars packets = %v, want %d", m.Value, nRouted+nUnrouted)
			}
		}
	}
	if !found {
		t.Error("/debug/vars missing up4_switch_packets_total")
	}

	// /trace returns the ring as ndjson with increasing sequence numbers
	// and table events for the LPM lookup.
	var lastSeq uint64
	sawLPM := false
	sc := bufio.NewScanner(strings.NewReader(scrape(t, base+"/trace")))
	lines := 0
	for sc.Scan() {
		if sc.Text() == "" {
			continue
		}
		lines++
		var e microp4.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("/trace line %q: %v", sc.Text(), err)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("/trace sequence not increasing at %+v", e)
		}
		lastSeq = e.Seq
		if e.Kind == "table" && strings.HasSuffix(e.Name, "ipv4_lpm_tbl") {
			sawLPM = true
			if e.Module == "" {
				t.Errorf("table event lacks module attribution: %+v", e)
			}
		}
	}
	if lines == 0 {
		t.Fatal("/trace returned no events")
	}
	if !sawLPM {
		t.Error("/trace has no LPM table event")
	}
}
