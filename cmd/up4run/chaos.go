package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/netsim"
	"microp4/internal/sim"
	"microp4/internal/trace"
)

// chaosOpts collects the -chaos* flag values.
type chaosOpts struct {
	seed     uint64
	count    int
	model    netsim.FaultModel
	churn    int // control-plane ops per delivered packet, per node
	topo     string
	verbose  bool
	traceOut string // write the span flight recorder here on exit
}

// topology is a parsed -topo file (or the built-in three-hop line).
type topology struct {
	switches []string
	links    [][4]string // a, aPort, b, bPort
	injects  []endpointSpec
}

type endpointSpec struct {
	node string
	port uint64
}

// defaultTopology is the README walkthrough: three switches in a line,
// ingress at s1:0, egress at s3:1.
func defaultTopology() topology {
	return topology{
		switches: []string{"s1", "s2", "s3"},
		links:    [][4]string{{"s1", "1", "s2", "0"}, {"s2", "1", "s3", "0"}},
		injects:  []endpointSpec{{"s1", 0}},
	}
}

// parseTopology reads a topology file:
//
//	switch s1
//	switch s2
//	link s1:1 s2:0
//	inject s1:0
//
// Blank lines and #-comments are ignored.
func parseTopology(path string) (topology, error) {
	var t topology
	f, err := os.Open(path)
	if err != nil {
		return t, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(why string) (topology, error) {
			return t, fmt.Errorf("%s:%d: %s: %q", path, lineNo, why, line)
		}
		switch fields[0] {
		case "switch":
			if len(fields) != 2 {
				return bad("switch takes one name")
			}
			t.switches = append(t.switches, fields[1])
		case "link":
			if len(fields) != 3 {
				return bad("link takes two endpoints")
			}
			a, ap, err := splitEndpoint(fields[1])
			if err != nil {
				return bad(err.Error())
			}
			b, bp, err := splitEndpoint(fields[2])
			if err != nil {
				return bad(err.Error())
			}
			t.links = append(t.links, [4]string{a, fmt.Sprint(ap), b, fmt.Sprint(bp)})
		case "inject":
			if len(fields) != 2 {
				return bad("inject takes one endpoint")
			}
			node, port, err := splitEndpoint(fields[1])
			if err != nil {
				return bad(err.Error())
			}
			t.injects = append(t.injects, endpointSpec{node, port})
		default:
			return bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return t, err
	}
	if len(t.switches) == 0 {
		return t, fmt.Errorf("%s: no switches declared", path)
	}
	if len(t.injects) == 0 {
		return t, fmt.Errorf("%s: no inject endpoint declared", path)
	}
	return t, nil
}

func splitEndpoint(s string) (string, uint64, error) {
	i := strings.LastIndexByte(s, ':')
	if i <= 0 {
		return "", 0, fmt.Errorf("endpoint %q is not node:port", s)
	}
	port, err := strconv.ParseUint(s[i+1:], 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("endpoint %q has a bad port", s)
	}
	return s[:i], port, nil
}

// churnConfigFor derives a control-plane churn profile from the
// program's standard rule set: every table that normally carries
// entries gets churned with the action its first default entry uses.
// The dataplane's control schema (when composed) shapes the random
// keys and arguments to real column kinds/widths instead of the blind
// 16-bit-exact fallback.
func churnConfigFor(program string, dp *microp4.Dataplane) netsim.ChurnConfig {
	t := sim.NewTables()
	lib.InstallDefaultRules(t, program, false)
	cfg := netsim.ChurnConfig{
		Actions:  map[string]string{},
		ArgCount: 3, ArgMax: 1 << 16,
		Groups: []uint64{1}, Ports: []uint64{1, 2, 3},
	}
	if dp != nil {
		if composed, _ := dp.Composed(); composed {
			cfg.API = dp.ControlAPI()
		}
	}
	for _, name := range t.TableNames() {
		entries := t.Entries(name)
		if len(entries) == 0 {
			continue
		}
		cfg.Tables = append(cfg.Tables, name)
		cfg.Actions[name] = entries[0].Action
	}
	return cfg
}

// runChaos drives a seeded chaos run: the program's switches wired into
// a Network, every link carrying the flag-configured fault model, the
// canned traffic mix injected at the topology's ingress points. The
// identical seed reproduces the identical fault sequence and counters.
func runChaos(program, engine string, o chaosOpts) error {
	topo := defaultTopology()
	if o.topo != "" {
		var err error
		if topo, err = parseTopology(o.topo); err != nil {
			return err
		}
	}
	dp, err := buildDataplane(program)
	if err != nil {
		return err
	}
	eng := microp4.EngineCompiled
	if engine == "reference" {
		eng = microp4.EngineReference
	}

	n := netsim.New(o.seed)
	reg := n.EnableMetrics()
	var rec *trace.Recorder
	if o.traceOut != "" {
		// One shared flight recorder: the network records link and hop
		// dispatch, every switch records its hop spans into the same ring.
		rec = trace.NewRecorder(0)
		n.SetTracing(rec)
	}
	for _, name := range topo.switches {
		sw := dp.NewSwitchWith(eng)
		installRules(sw, program)
		sw.SetTracing(rec)
		if err := n.AddSwitch(name, sw); err != nil {
			return err
		}
	}
	for _, l := range topo.links {
		ap, _ := strconv.ParseUint(l[1], 10, 64)
		bp, _ := strconv.ParseUint(l[3], 10, 64)
		if err := n.Connect(l[0], ap, l[2], bp, o.model); err != nil {
			return err
		}
	}
	if o.churn > 0 {
		cfg := churnConfigFor(program, dp)
		for _, name := range topo.switches {
			if err := n.AddChurn(name, cfg, o.churn); err != nil {
				return err
			}
		}
	}

	fmt.Printf("chaos: seed %#x, model %+v, churn %d op/pkt\n", o.seed, o.model, o.churn)
	fmt.Printf("topology: switches %v, %d links, inject at", topo.switches, len(topo.links))
	for _, in := range topo.injects {
		fmt.Printf(" %s:%d", in.node, in.port)
	}
	fmt.Println()

	if o.verbose {
		n.OnFault(func(e netsim.FaultEvent) { fmt.Println("  fault:", e) })
	}

	packets := trafficFor(program)
	for i := 0; i < o.count; i++ {
		in := topo.injects[i%len(topo.injects)]
		if err := n.Inject(in.node, in.port, packets[i%len(packets)]); err != nil {
			return err
		}
	}
	st, err := n.Run(0)
	if err != nil {
		return err
	}

	fmt.Printf("\nrun: %d injected, %d hops processed, %d egressed, %d node drops, %d proc errors\n",
		st.Injected, st.Steps, st.Egressed, st.NodeDrops, st.ProcErrors)
	for _, kind := range netsim.FaultKinds {
		if c := st.Faults[kind]; c > 0 {
			fmt.Printf("  fault %-9s %d\n", kind, c)
		}
	}
	if c := st.Faults[netsim.FaultProcError]; c > 0 {
		fmt.Printf("  fault %-9s %d\n", netsim.FaultProcError, c)
	}
	for _, d := range n.EgressAll() {
		fmt.Printf("egress %s:%d  %3dB\n", d.Node, d.Port, len(d.Data))
	}
	fmt.Println("\nfinal metrics:")
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		return err
	}
	if o.traceOut != "" {
		return writeTraceOut(rec, o.traceOut)
	}
	return nil
}
