// Command up4bench regenerates the paper's evaluation artifacts on the
// modeled targets:
//
//	up4bench                 # everything
//	up4bench -table 2        # Table 2 only (PHV overhead)
//	up4bench -figure 9       # the §5.2 worked example
//	up4bench -perf           # packet-throughput trajectory (BENCH_5.json)
//
// Tables 2 and 3 compare each composed program P1..P11 against its
// monolithic baseline on the modeled Tofino; Figures 9, 10, and 13 are
// the paper's worked examples (static analysis, parser→MAT, slicing).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"microp4/internal/eval"
	"microp4/internal/perf"
)

func main() {
	var (
		table    = flag.Int("table", 0, "print only this table (1-3)")
		figure   = flag.Int("figure", 0, "print only this figure (9, 10, or 13)")
		timings  = flag.Bool("timings", false, "print only the aggregated compiler pass timings")
		perfMode = flag.Bool("perf", false, "run the packet-throughput suite (P1-P11, both engines, serial/batch/parallel)")
		perfOut  = flag.String("perf-out", "", "with -perf: also write the JSON report to this path")
		perfDur  = flag.Duration("perf-dur", 300*time.Millisecond, "with -perf: measurement duration per cell")
		perfWork = flag.Int("perf-workers", 4, "with -perf: worker count for the parallel mode")
	)
	flag.Parse()
	if *perfMode {
		if err := runPerf(*perfOut, *perfDur, *perfWork); err != nil {
			fmt.Fprintf(os.Stderr, "up4bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*table, *figure, *timings); err != nil {
		fmt.Fprintf(os.Stderr, "up4bench: %v\n", err)
		os.Exit(1)
	}
}

// runPerf measures the packet-throughput trajectory and prints it as a
// table; with -perf-out it also writes the BENCH_5.json artifact the CI
// regression gate compares against.
func runPerf(out string, dur time.Duration, workers int) error {
	programs := []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "P11"}
	rep, err := perf.RunSuite(programs, dur, workers, func(cell string) {
		fmt.Fprintf(os.Stderr, "measuring %s\n", cell)
	})
	if err != nil {
		return err
	}
	fmt.Print(perf.Table(rep))
	if out != "" {
		if err := rep.Write(out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	}
	return nil
}

func run(table, figure int, timings bool) error {
	all := table == 0 && figure == 0 && !timings

	if all || table == 1 {
		fmt.Println(eval.Table1())
	}
	if all || table == 2 || table == 3 {
		pairs, err := eval.CompileAll()
		if err != nil {
			return err
		}
		if all || table == 2 {
			fmt.Println(eval.Table2(pairs))
		}
		if all || table == 3 {
			fmt.Println(eval.Table3(pairs))
		}
	}
	if all || figure == 9 {
		out, _, err := eval.Figure9()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if all || figure == 10 {
		out, err := eval.Figure10()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if all || figure == 13 {
		out, err := eval.Figure13()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if all || timings {
		out, err := eval.TimingsTable()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if all {
		fmt.Println(eval.ModuleList())
	}
	return nil
}
