package main

import "testing"

// The bench command is exercised end to end: every table and figure
// renders without error in every selection mode.
func TestRunAll(t *testing.T) {
	if err := run(0, 0, false); err != nil {
		t.Fatalf("run all: %v", err)
	}
}

func TestRunSelections(t *testing.T) {
	for table := 1; table <= 3; table++ {
		if err := run(table, 0, false); err != nil {
			t.Errorf("table %d: %v", table, err)
		}
	}
	for _, fig := range []int{9, 10, 13} {
		if err := run(0, fig, false); err != nil {
			t.Errorf("figure %d: %v", fig, err)
		}
	}
	if err := run(0, 0, true); err != nil {
		t.Errorf("timings: %v", err)
	}
}
