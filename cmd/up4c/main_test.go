package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/trace"
)

// stage writes the P4 router suite into a temp dir and returns the
// file paths (main first).
func stage(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	var paths []string
	for i, f := range []string{"up4/p4_router.up4", "up4/l3.up4", "up4/ipv4.up4", "up4/ipv6.up4"} {
		src, err := lib.Source(f)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, filepath.Base(f))
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
		_ = i
	}
	return paths
}

func TestRunEmitIR(t *testing.T) {
	files := stage(t)
	out := filepath.Join(t.TempDir(), "ir.json")
	if err := run("upa", out, false, false, false, microp4.BuildOptions{}, files[:1]); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name": "P4Router"`) {
		t.Errorf("IR output missing program name:\n%.200s", data)
	}
}

func TestRunV1ModelAndTNA(t *testing.T) {
	files := stage(t)
	for _, arch := range []string{"v1model", "tna"} {
		out := filepath.Join(t.TempDir(), arch+".p4")
		if err := run(arch, out, true, true, false, microp4.BuildOptions{EliminateCleanCopies: true}, files); err != nil {
			t.Fatalf("run %s: %v", arch, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 500 {
			t.Errorf("%s output suspiciously small (%d bytes)", arch, len(data))
		}
	}
}

func TestRunControlAPI(t *testing.T) {
	files := stage(t)
	out := filepath.Join(t.TempDir(), "api.json")
	if err := run("v1model", out, false, false, true, microp4.BuildOptions{SplitParserMATs: true}, files); err != nil {
		t.Fatalf("run -api: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ipv4_lpm_tbl") {
		t.Errorf("control API schema incomplete:\n%.300s", data)
	}
}

// TestRunTimings drives the -timings path: a timed compile must record
// every stage from lexer through backend exactly once per invocation.
func TestRunTimings(t *testing.T) {
	files := stage(t)
	pt := microp4.NewPassTimer()
	out := filepath.Join(t.TempDir(), "tna.p4")
	if err := run("tna", out, false, false, false, microp4.BuildOptions{Timer: pt}, files); err != nil {
		t.Fatalf("run -timings: %v", err)
	}
	got := make(map[string]int)
	for _, p := range pt.Passes() {
		got[p.Name] = p.N
		if p.Wall < 0 {
			t.Errorf("stage %s has negative wall time", p.Name)
		}
	}
	for _, stage := range []string{"lexer", "parser", "frontend", "transform", "linker", "midend", "compose", "backend"} {
		if got[stage] == 0 {
			t.Errorf("stage %q not recorded; have %v", stage, got)
		}
	}
	if got["lexer"] != len(files) {
		t.Errorf("lexer ran %d times, want once per file (%d)", got["lexer"], len(files))
	}
	if !strings.Contains(pt.String(), "total") {
		t.Errorf("rendered table missing total row:\n%s", pt)
	}
}

// TestValidateTrace exercises the -validate-trace path: a genuine
// flight-recorder export passes, while missing files, foreign schemas,
// and malformed spans are rejected with exit code 1.
func TestValidateTrace(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	rec := trace.NewRecorder(16)
	sp := &trace.Span{TraceID: 1, SpanID: 1, Kind: "hop", Name: "s1", Start: 3, End: 9}
	rec.Record(sp)
	rec.Record(&trace.Span{TraceID: 1, SpanID: 2, ParentID: 1, Kind: "link", Name: "s1:1->s2:0", Start: 9, End: 10})
	rec.NoteFault(sp, []byte{0xAB})
	var buf strings.Builder
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if code := validateTrace(write("good.json", buf.String())); code != 0 {
		t.Errorf("valid export rejected (exit %d)", code)
	}

	for name, body := range map[string]string{
		"missing-schema.json": `{"spans":[]}`,
		"bad-kind.json":       `{"schema":"up4trace/v1","spans":[{"trace_id":1,"span_id":1,"kind":"zap"}]}`,
		"zero-ids.json":       `{"schema":"up4trace/v1","spans":[{"kind":"hop"}]}`,
		"time-warp.json":      `{"schema":"up4trace/v1","spans":[{"trace_id":1,"span_id":1,"kind":"hop","start":5,"end":2}]}`,
		"garbage.json":        "not json",
	} {
		if code := validateTrace(write(name, body)); code == 0 {
			t.Errorf("%s accepted", name)
		}
	}
	if code := validateTrace(filepath.Join(dir, "nonexistent.json")); code == 0 {
		t.Error("missing file accepted")
	}
}

func TestRunErrors(t *testing.T) {
	files := stage(t)
	if err := run("bogus-arch", "", false, false, false, microp4.BuildOptions{}, files); err == nil {
		t.Error("unknown arch accepted")
	}
	if err := run("v1model", "", false, false, false, microp4.BuildOptions{}, []string{"/nonexistent/x.up4"}); err == nil {
		t.Error("missing file accepted")
	}
	// Missing modules fail at link time.
	if err := run("v1model", os.DevNull, false, false, false, microp4.BuildOptions{}, files[:1]); err == nil {
		t.Error("unlinked composition accepted")
	}
}
