// Command up4c is the µP4 compiler CLI, mirroring the paper's Fig. 4:
//
// Compile a single module to µP4-IR (JSON):
//
//	up4c -arch upa -o l2.json l2.up4
//
// Compose a main program with library modules and generate code for a
// target architecture:
//
//	up4c -arch v1model -o main_v1.p4 main.up4 l3.up4 ipv4.up4 ipv6.up4
//	up4c -arch tna main.up4 l3.up4 ipv4.up4 ipv6.up4
//
// The first source file must contain the main program (the one with an
// instantiation or the file's single program declaration); the rest are
// library modules.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microp4"
	"microp4/internal/equiv"
	"microp4/internal/lib"
	"microp4/internal/trace"
)

func main() {
	var (
		arch    = flag.String("arch", "upa", "target architecture: upa (emit µP4-IR), v1model, or tna")
		out     = flag.String("o", "", "output file (default: stdout)")
		stats   = flag.Bool("stats", false, "print the operational-region analysis (§5.2)")
		api     = flag.Bool("api", false, "emit the control-plane API schema (Fig. 4) instead of target code")
		opt     = flag.Bool("O", false, "enable the §8.1 clean-copy elimination")
		splitP  = flag.Bool("split-parser", false, "use the §8.1 per-depth parser MAT encoding")
		verbose = flag.Bool("v", false, "print per-module details")
		timings = flag.Bool("timings", false, "print per-pass wall time and IR sizes to stderr")
		verifyP = flag.Bool("verify-paths", false, "run the path-coverage equivalence checker over the named built-in programs (default: all of P1-P11) and exit nonzero on any gap or divergence")
		valTr   = flag.String("validate-trace", "", "validate an up4run -trace-out JSON export against the up4trace/v1 schema, print a summary, and exit nonzero if invalid")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: up4c [-arch upa|v1model|tna] [-o out] main.up4 [module.up4 ...]\n"+
			"       up4c -verify-paths [P1 ... P8]\n"+
			"       up4c -validate-trace trace.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *verifyP {
		os.Exit(verifyPaths(flag.Args()))
	}
	if *valTr != "" {
		os.Exit(validateTrace(*valTr))
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	bopts := microp4.BuildOptions{EliminateCleanCopies: *opt, SplitParserMATs: *splitP}
	var pt *microp4.PassTimer
	if *timings {
		pt = microp4.NewPassTimer()
		bopts.Timer = pt
	}
	err := run(*arch, *out, *stats, *verbose, *api, bopts, flag.Args())
	if pt != nil {
		fmt.Fprint(os.Stderr, pt.String())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "up4c: %v\n", err)
		os.Exit(1)
	}
}

// verifyPaths runs the mechanized path-coverage equivalence check
// (internal/equiv) over the named built-in programs — all of P1–P11 when
// none are given — and prints one report per program. The exit code is
// 0 only when every program reaches full parser-path coverage with zero
// divergences.
func verifyPaths(names []string) int {
	if len(names) == 0 {
		for _, m := range lib.Programs {
			names = append(names, m.Name)
		}
	}
	code := 0
	for _, name := range names {
		r, err := equiv.Check(name, equiv.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "up4c: verify-paths %s: %v\n", name, err)
			code = 1
			continue
		}
		fmt.Print(r.String())
		if !r.OK() {
			code = 1
		}
	}
	if code == 0 {
		fmt.Println("verify-paths: all programs equivalent on every enumerated path")
	} else {
		fmt.Fprintln(os.Stderr, "verify-paths: FAILED (coverage gap or divergence above)")
	}
	return code
}

// validateTrace parses a flight-recorder export (up4run -trace-out /
// GET /trace/spans) and checks it against the up4trace/v1 schema:
// every span must carry a kind and nonzero ids, hop/link spans a
// nonzero trace id distinct from a txn root only by parentage. Prints
// a per-kind summary on success.
func validateTrace(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "up4c: validate-trace: %v\n", err)
		return 1
	}
	spans, faults, err := trace.ReadJSON(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "up4c: validate-trace %s: %v\n", path, err)
		return 1
	}
	kinds := map[string]int{}
	for i, sp := range spans {
		if sp.Kind != "hop" && sp.Kind != "link" && sp.Kind != "txn" {
			fmt.Fprintf(os.Stderr, "up4c: validate-trace %s: span %d has unknown kind %q\n", path, i, sp.Kind)
			return 1
		}
		if sp.TraceID == 0 || sp.SpanID == 0 {
			fmt.Fprintf(os.Stderr, "up4c: validate-trace %s: span %d (%s %q) lacks trace/span ids\n", path, i, sp.Kind, sp.Name)
			return 1
		}
		if sp.End < sp.Start {
			fmt.Fprintf(os.Stderr, "up4c: validate-trace %s: span %d (%s %q) ends at %d before start %d\n", path, i, sp.Kind, sp.Name, sp.End, sp.Start)
			return 1
		}
		kinds[sp.Kind]++
	}
	fmt.Printf("validate-trace: %s ok (%s): %d spans (%d hop, %d link, %d txn), %d fault dumps\n",
		path, trace.Schema, len(spans), kinds["hop"], kinds["link"], kinds["txn"], len(faults))
	return 0
}

func run(arch, out string, stats, verbose, api bool, bopts microp4.BuildOptions, files []string) error {
	mods := make([]*microp4.Module, 0, len(files))
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		m, err := microp4.CompileModuleTimed(f, string(src), bopts.Timer)
		if err != nil {
			return err
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "compiled %s: program %s implements %s\n", f, m.Name(), m.Interface())
		}
		mods = append(mods, m)
	}

	emit := func(data []byte) error {
		if out == "" {
			_, err := os.Stdout.Write(data)
			return err
		}
		return os.WriteFile(out, data, 0o644)
	}

	switch strings.ToLower(arch) {
	case "upa", "µpa", "ir":
		// Frontend only: serialize each module's µP4-IR.
		var b strings.Builder
		for _, m := range mods {
			data, err := m.ToJSON()
			if err != nil {
				return err
			}
			b.Write(data)
			b.WriteString("\n")
		}
		return emit([]byte(b.String()))
	case "v1model", "tna":
		dp, err := microp4.BuildWithOptions(bopts, mods[0], mods[1:]...)
		if err != nil {
			return err
		}
		if api {
			schema, err := dp.ControlAPI().ToJSON()
			if err != nil {
				return err
			}
			return emit(append(schema, '\n'))
		}
		if stats {
			st := dp.Stats()
			fmt.Fprintf(os.Stderr, "operational region: extract-length %dB, Δ +%dB, δ -%dB, byte-stack %dB, min packet %dB\n",
				st.ExtractLength, st.MaxIncrease, st.MaxDecrease, st.ByteStack, st.MinPacket)
		}
		var src string
		stopBackend := bopts.Timer.Time("backend")
		if arch == "v1model" {
			src, err = dp.EmitV1Model()
		} else {
			src, err = dp.EmitTNA()
			if rep, rerr := dp.Tofino(); rerr == nil {
				fmt.Fprintf(os.Stderr, "tofino: feasible=%v 8b=%d 16b=%d 32b=%d bits=%d stages=%d\n",
					rep.Feasible, rep.Containers8, rep.Containers16, rep.Containers32,
					rep.BitsAllocated, rep.Stages)
				if !rep.Feasible {
					fmt.Fprintf(os.Stderr, "tofino: %s\n", rep.Reason)
				}
			}
		}
		if err != nil {
			return err
		}
		stopBackend(0, len(src))
		return emit([]byte(src))
	}
	return fmt.Errorf("unknown architecture %q (have upa, v1model, tna)", arch)
}
