// Package microp4 is a Go implementation of µP4 ("Composing Dataplane
// Programs with µP4", SIGCOMM 2020): a framework for writing modular,
// composable, portable dataplane programs, with a compiler (µP4C) that
// homogenizes parsers and deparsers into match-action tables over a
// synthesized byte-stack and maps the composed program onto target
// pipelines.
//
// The typical flow mirrors the paper's Fig. 4:
//
//	ipv4, _ := microp4.CompileModule("ipv4.up4", ipv4Src)   // module → µP4-IR
//	l3, _ := microp4.CompileModule("l3.up4", l3Src)
//	router, _ := microp4.CompileModule("router.up4", mainSrc)
//	dp, _ := microp4.Build(router, l3, ipv4)                 // link + midend
//	sw := dp.NewSwitch()                                     // behavioral target
//	sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
//	    []microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", 100)
//	out, _ := sw.Process(packet, 1)
//
// Hardware mapping reports (the paper's Tables 2 and 3) come from
// dp.Tofino(); generated P4 sources from dp.EmitV1Model() and
// dp.EmitTNA().
package microp4

import (
	"fmt"

	"microp4/internal/backend/tna"
	"microp4/internal/backend/v1model"
	"microp4/internal/frontend"
	"microp4/internal/ir"
	"microp4/internal/mat"
	"microp4/internal/midend"
	"microp4/internal/obs"
	"microp4/internal/sim"
)

// PassTimer accumulates per-compiler-stage wall time and input/output
// sizes. Pass one to CompileModuleTimed and BuildOptions.Timer; render
// it with String or MarshalJSON. The zero value via NewPassTimer is
// ready to use; a nil *PassTimer disables timing at zero cost.
type PassTimer = obs.PassTimer

// NewPassTimer returns an empty pass timer.
func NewPassTimer() *PassTimer { return new(obs.PassTimer) }

// Module is one compiled µP4 module (its µP4-IR).
type Module struct {
	prog *ir.Program
}

// Name returns the module's program name.
func (m *Module) Name() string { return m.prog.Name }

// Interface returns the µPA interface the module implements.
func (m *Module) Interface() string { return m.prog.Interface }

// ToJSON serializes the module's µP4-IR (the frontend's output format).
func (m *Module) ToJSON() ([]byte, error) { return m.prog.ToJSON() }

// CompileModule runs the µP4C frontend on one source file.
func CompileModule(filename, source string) (*Module, error) {
	return CompileModuleTimed(filename, source, nil)
}

// CompileModuleTimed is CompileModule recording lexer, parser, and
// frontend timings into pt (which may be nil).
func CompileModuleTimed(filename, source string, pt *PassTimer) (*Module, error) {
	p, err := frontend.CompileModuleTimed(filename, source, pt)
	if err != nil {
		return nil, err
	}
	return &Module{prog: p}, nil
}

// ModuleFromJSON loads a previously serialized µP4-IR module.
func ModuleFromJSON(data []byte) (*Module, error) {
	p, err := ir.FromJSON(data)
	if err != nil {
		return nil, err
	}
	return &Module{prog: p}, nil
}

// Stats is a program's operational region (§5.2).
type Stats struct {
	ExtractLength int // El: bytes the composed program may need to parse
	MaxIncrease   int // Δ: bytes the packet may grow
	MaxDecrease   int // δ: bytes the packet may shrink
	ByteStack     int // Bs = El + Δ (Eq. 4)
	MinPacket     int // smallest packet the program accepts
}

// Dataplane is a linked, composed µP4 program ready to execute or to map
// onto a target.
type Dataplane struct {
	res *midend.Result
}

// BuildOptions select optional compiler behaviour.
type BuildOptions struct {
	// EliminateCleanCopies enables the §8.1 optimization that drops
	// redundant parser copies and deparser write-backs of headers a
	// module never modifies.
	EliminateCleanCopies bool
	// SplitParserMATs selects the §8.1 per-depth parser encoding (one
	// MAT per parse hop) instead of one path-product MAT per parser.
	SplitParserMATs bool
	// Timer, when non-nil, records midend stage timings (transform,
	// linker, midend analysis, compose).
	Timer *PassTimer
}

// Build links a main program against its library modules and runs the
// full µP4C midend: §C transformations, static analysis, and
// homogenization/composition into a MAT-only pipeline.
func Build(main *Module, modules ...*Module) (*Dataplane, error) {
	return BuildWithOptions(BuildOptions{}, main, modules...)
}

// BuildWithOptions is Build with explicit compiler options.
func BuildWithOptions(opts BuildOptions, main *Module, modules ...*Module) (*Dataplane, error) {
	mods := make([]*ir.Program, len(modules))
	for i, m := range modules {
		mods[i] = m.prog
	}
	res, err := midend.BuildWith(midend.Options{
		Compose: mat.Options{
			EliminateCleanCopies: opts.EliminateCleanCopies,
			SplitParserMATs:      opts.SplitParserMATs,
		},
		Timer: opts.Timer,
	}, main.prog, mods...)
	if err != nil {
		return nil, err
	}
	return &Dataplane{res: res}, nil
}

// Stats returns the main program's operational region.
func (d *Dataplane) Stats() Stats {
	st := d.res.Analysis.Main()
	return Stats{
		ExtractLength: st.El,
		MaxIncrease:   st.Inc,
		MaxDecrease:   st.Dec,
		ByteStack:     st.Bs,
		MinPacket:     st.MinPkt,
	}
}

// ModuleStats returns the operational region of one linked module.
func (d *Dataplane) ModuleStats(name string) (Stats, error) {
	st, ok := d.res.Analysis.Stats[name]
	if !ok {
		return Stats{}, fmt.Errorf("no linked module named %q", name)
	}
	return Stats{
		ExtractLength: st.El, MaxIncrease: st.Inc, MaxDecrease: st.Dec,
		ByteStack: st.Bs, MinPacket: st.MinPkt,
	}, nil
}

// Tables lists the control-plane-visible (user) tables of the composed
// pipeline, fully qualified by module instance path.
func (d *Dataplane) Tables() []string {
	if d.res.Pipeline == nil {
		return nil
	}
	return append([]string(nil), d.res.Pipeline.UserTables...)
}

// Composed reports whether the midend produced a compiled MAT pipeline.
// Multi-packet orchestration programs (§5.4) run only on the reference
// engine; Err explains why when false.
func (d *Dataplane) Composed() (bool, error) {
	if d.res.Pipeline == nil {
		return false, d.res.ComposeErr
	}
	return true, nil
}

// TofinoReport summarizes mapping the program onto the modeled Tofino.
type TofinoReport struct {
	Feasible       bool
	Reason         string
	Containers8    int
	Containers16   int
	Containers32   int
	BitsAllocated  int
	Stages         int
	LogicalTables  int
	SplitOps       int
	WorstALUAccess int
}

func toReport(r *tna.Report) *TofinoReport {
	return &TofinoReport{
		Feasible: r.Feasible, Reason: r.Reason,
		Containers8: r.Used8, Containers16: r.Used16, Containers32: r.Used32,
		BitsAllocated: r.Bits, Stages: r.Stages, LogicalTables: r.Tables,
		SplitOps: r.SplitOps, WorstALUAccess: r.WorstALU,
	}
}

// Tofino maps the composed pipeline onto the modeled Tofino target and
// reports resource usage (Tables 2-3 of the paper).
func (d *Dataplane) Tofino() (*TofinoReport, error) {
	if d.res.Pipeline == nil {
		return nil, d.res.ComposeErr
	}
	rep, err := tna.CompileComposed(d.res.Pipeline, tna.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return toReport(rep), nil
}

// TofinoMonolithic maps a flat (single-module) program onto the modeled
// Tofino via the baseline path: hardware parser, natural PHV packing.
func TofinoMonolithic(m *Module) (*TofinoReport, error) {
	t, err := midend.Transform(m.prog)
	if err != nil {
		return nil, err
	}
	rep, err := tna.CompileMonolithic(t, tna.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return toReport(rep), nil
}

// EmitTNA renders the composed pipeline as TNA-style P4 source.
func (d *Dataplane) EmitTNA() (string, error) {
	if d.res.Pipeline == nil {
		return "", d.res.ComposeErr
	}
	rep, err := tna.CompileComposed(d.res.Pipeline, tna.DefaultOptions())
	if err != nil {
		return "", err
	}
	return tna.Emit(d.res.Pipeline, rep), nil
}

// EmitV1Model partitions the pipeline across V1Model's ingress/egress
// (§5.5) and renders it as P4 source.
func (d *Dataplane) EmitV1Model() (string, error) {
	if d.res.Pipeline == nil {
		return "", d.res.ComposeErr
	}
	part, err := v1model.Split(d.res.Pipeline)
	if err != nil {
		return "", err
	}
	return v1model.Emit(d.res.Pipeline, part), nil
}

// ----------------------------------------------------------------------------
// Control plane keys

// Key is one match key of a control-plane entry.
type Key struct{ k sim.RuntimeKey }

// Exact matches the value exactly.
func Exact(v uint64) Key { return Key{sim.Exact(v)} }

// LPM matches the top plen bits.
func LPM(v uint64, plen int) Key { return Key{sim.LPM(v, plen)} }

// Ternary matches value&mask.
func Ternary(v, mask uint64) Key { return Key{sim.Ternary(v, mask)} }

// Any matches everything.
func Any() Key { return Key{sim.Any()} }

func toRuntime(keys []Key) []sim.RuntimeKey {
	out := make([]sim.RuntimeKey, len(keys))
	for i, k := range keys {
		out[i] = k.k
	}
	return out
}
