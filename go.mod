module microp4

go 1.22
