package microp4_test

import (
	"testing"

	"microp4"
	"microp4/internal/pkt"
)

// TestThreeHopTopology wires three P4 routers into a line topology and
// forwards a packet end to end: each hop routes by LPM, rewrites MACs,
// and decrements TTL; the last hop sees the TTL hit zero on a too-long
// path.
func TestThreeHopTopology(t *testing.T) {
	dp := compileLib(t, "P4") // one compiled dataplane, three switch instances

	newHop := func(hop int) *microp4.Switch {
		sw := dp.NewSwitch()
		// Every hop routes 10/8 onward through port 1 with its own MACs.
		sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
			[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", 100)
		sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(100)},
			"forward", uint64(0xAA0000000000+hop), uint64(0xBB0000000000+hop), 1)
		return sw
	}
	hops := []*microp4.Switch{newHop(1), newHop(2), newHop(3)}

	data := pkt.NewBuilder().
		Ethernet(0xFF, 0xEE, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 0x0B000001, Dst: 0x0A000042}).
		TCP(1234, 80).Payload([]byte("end-to-end")).Bytes()

	for i, sw := range hops {
		out, err := sw.Process(data, 0)
		if err != nil {
			t.Fatalf("hop %d: %v", i+1, err)
		}
		if len(out) != 1 || out[0].Port != 1 {
			t.Fatalf("hop %d: %+v", i+1, out)
		}
		data = out[0].Data
		if ttl := pkt.IPv4TTL(data, 14); ttl != 64-uint8(i+1) {
			t.Errorf("hop %d: ttl %d, want %d", i+1, ttl, 64-(i+1))
		}
		if dmac := pkt.EthDst(data); dmac != uint64(0xAA0000000000+i+1) {
			t.Errorf("hop %d: dmac %#x", i+1, dmac)
		}
	}
	if !equalBytes(data[len(data)-10:], []byte("end-to-end")) {
		t.Error("payload corrupted across the path")
	}

	// A TTL=2 packet dies at the second hop's TTL check on the third.
	low := pkt.NewBuilder().
		Ethernet(0xFF, 0xEE, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 2, Protocol: 6, Src: 1, Dst: 0x0A000042}).
		TCP(1, 2).Bytes()
	for i, sw := range hops {
		out, err := sw.Process(low, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			if len(out) != 1 {
				t.Fatalf("hop %d dropped a live packet", i+1)
			}
			low = out[0].Data
			continue
		}
		if len(out) != 0 {
			t.Errorf("hop 3 forwarded a TTL-expired packet: %+v", out)
		}
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
