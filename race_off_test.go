//go:build !race

package microp4_test

// raceEnabled reports whether the race detector is compiled in; the
// timing-sensitive benchmark guards skip themselves under it.
const raceEnabled = false
